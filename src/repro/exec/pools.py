"""Pooled execution backends: shared-memory threads and worker processes.

Both pools are created lazily on first :meth:`~ExecutionBackend.map` call
so that merely constructing a deployment never spawns workers, and both
survive pickling (the pool itself is dropped and re-created on demand),
which lets deployment objects holding a backend cross process boundaries.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional

from repro.exec.backend import ExecutionBackend
from repro.utils.validation import require


def _default_thread_workers() -> int:
    """Threads for latency-bound epoch stages: several per core.

    Epoch work on one box is dominated by blocking time (simulated
    network/enclave latency, page faults) rather than GIL-bound compute,
    so oversubscribing cores is the right default.
    """
    return min(32, 4 * (os.cpu_count() or 1))


class _PooledBackend(ExecutionBackend):
    """Common plumbing for executor-based backends (lazy pool, close)."""

    name = "pooled"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None:
            require(max_workers > 0, "max_workers must be positive")
        self.max_workers = max_workers
        self._executor: Optional[Executor] = None

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def map(self, fn, tasks) -> list:
        """Fan tasks out across the pool; gather results in task order."""
        tasks = list(tasks)
        if len(tasks) <= 1:
            # One task gains nothing from the pool; run it inline (this
            # also keeps single-balancer deployments allocation-free).
            return [fn(task) for task in tasks]
        if self._executor is None:
            self._executor = self._make_executor()
        # Executor.map preserves input order and re-raises the first
        # failing task's exception at iteration time.
        return list(self._executor.map(fn, tasks))

    def close(self) -> None:
        """Shut the pool down; safe to call repeatedly."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # Executors are neither picklable nor deepcopy-able; drop them and
    # let the pool re-create itself lazily wherever the copy lands.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class ThreadPoolBackend(_PooledBackend):
    """Shared-memory thread pool: overlap blocking epoch work.

    Tasks mutate shared objects in place (``supports_shared_state``), so
    subORAM state stays where it is and transports holding live channel
    state work unchanged.  On CPython the GIL serializes pure-Python
    compute, but epoch stages that block — simulated network latency,
    encrypted-store paging, real sockets in a networked deployment —
    overlap fully, which is what Figure 13's wall-clock speedup measures.
    """

    name = "thread"
    supports_shared_state = True

    def _make_executor(self) -> Executor:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else _default_thread_workers()
        )
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-epoch"
        )


class ProcessPoolBackend(_PooledBackend):
    """Worker-process pool: true multi-core epoch execution.

    Stage functions and tasks are pickled to workers; mutated state
    (each subORAM's encrypted store) is shipped back by value and
    reinstalled by the epoch driver, so results remain byte-identical to
    serial execution.  Closures over live channels cannot cross the
    process boundary (``supports_shared_state`` is False); the driver
    rejects such transports with a
    :class:`~repro.errors.ConfigurationError`.
    """

    name = "process"
    supports_shared_state = False

    def _make_executor(self) -> Executor:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else (os.cpu_count() or 1)
        )
        return ProcessPoolExecutor(max_workers=workers)
