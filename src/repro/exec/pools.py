"""Pooled execution backends: shared-memory threads and worker processes.

Both pools are created lazily on first :meth:`~ExecutionBackend.map` call
so that merely constructing a deployment never spawns workers, and both
survive pickling (the pool itself is dropped and re-created on demand),
which lets deployment objects holding a backend cross process boundaries.

**Fault surface.**  Pools turn infrastructure failures into the typed
errors the epoch retry machinery understands instead of hanging the
driver:

* ``task_timeout`` (seconds, per task) bounds how long any one task may
  run; an overrun raises :class:`~repro.errors.TaskTimeoutError` and the
  pool (or stuck sticky worker) is torn down so the late result can never
  corrupt a retried epoch.
* a worker process that dies mid-task (killed, OOM, segfault) raises
  :class:`~repro.errors.WorkerCrashError`; for sticky ``map_stateful``
  workers the parent additionally invalidates that key's state-cache
  entry and respawns the worker, forcing a clean full state ship on the
  retry.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import zlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from repro.errors import TaskTimeoutError, WorkerCrashError
from repro.exec import shipping
from repro.exec.backend import ExecutionBackend
from repro.utils.validation import require


def _unit_of(key) -> Optional[int]:
    """Best-effort epoch unit index from a ``map_stateful`` key.

    The epoch driver keys stateful tasks as ``(state_ns, suboram_index)``;
    surfacing that index on fault errors lets ``EpochFailedError`` name
    the failing unit without the backend knowing anything about epochs.
    """
    if (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[1], int)
    ):
        return key[1]
    return None


def _instrumented(fn, submitted: float, queue_hist, run_hist):
    """Wrap a stage fn to record queue-wait and run time per task.

    Only used on shared-memory pools (the closure cannot cross a process
    boundary).  ``submitted`` is the fan-out instant — all of a stage's
    tasks are submitted together, so ``start - submitted`` is how long
    the task sat waiting for a free worker.
    """

    def wrapped(task):
        start = time.monotonic()
        queue_hist.observe(start - submitted)
        try:
            return fn(task)
        finally:
            run_hist.observe(time.monotonic() - start)

    return wrapped


def _default_thread_workers() -> int:
    """Threads for latency-bound epoch stages: several per core.

    Epoch work on one box is dominated by blocking time (simulated
    network/enclave latency, page faults) rather than GIL-bound compute,
    so oversubscribing cores is the right default.
    """
    return min(32, 4 * (os.cpu_count() or 1))


class _PooledBackend(ExecutionBackend):
    """Common plumbing for executor-based backends (lazy pool, close)."""

    name = "pooled"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ):
        if max_workers is not None:
            require(max_workers > 0, "max_workers must be positive")
        if task_timeout is not None:
            require(task_timeout > 0, "task_timeout must be positive")
        self.max_workers = max_workers
        self.task_timeout = task_timeout
        self._executor: Optional[Executor] = None
        # Guards lazy pool creation/teardown: the pipelined scheduler's
        # stage threads issue overlapping map calls, and two of them
        # racing the first call must not each build (and leak) a pool.
        self._pool_lock = threading.Lock()

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _get_executor(self) -> Executor:
        """The live pool, created on first use (double-checked lock)."""
        executor = self._executor
        if executor is None:
            with self._pool_lock:
                executor = self._executor
                if executor is None:
                    executor = self._executor = self._make_executor()
        return executor

    def _abandon_executor(self) -> None:
        """Drop a pool whose workers can no longer be trusted.

        Called after a timeout or worker crash: the stuck/late tasks are
        cancelled where possible and the pool reference released without
        waiting, so a straggler finishing later can never feed a result
        into a retried epoch.  The next ``map`` call builds a fresh pool.
        """
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def map(self, fn, tasks) -> list:
        """Fan tasks out across the pool; gather results in task order.

        Safe to call from multiple threads concurrently (the pipelined
        scheduler overlaps stage dispatches); executors accept
        concurrent submissions, and pool creation is lock-guarded.
        """
        tasks = list(tasks)
        if len(tasks) <= 1:
            # One task gains nothing from the pool; run it inline (this
            # also keeps single-balancer deployments allocation-free).
            return [fn(task) for task in tasks]
        executor = self._get_executor()
        telemetry = self.telemetry
        if telemetry.enabled and self.supports_shared_state:
            # Shared-memory pools can time inside the worker: split each
            # task into queue wait (submit -> start) vs run time.
            fn = _instrumented(
                fn,
                time.monotonic(),
                telemetry.histogram(
                    "exec_task_queue_seconds", backend=self.name
                ),
                telemetry.histogram(
                    "exec_task_run_seconds", backend=self.name
                ),
            )
        # Process pools cannot ship the timing closure; record each
        # task's total submit-to-completion latency host-side instead
        # (requires the futures path even without a timeout).
        time_totals = telemetry.enabled and not self.supports_shared_state
        try:
            if self.task_timeout is None and not time_totals:
                # Executor.map preserves input order and re-raises the
                # first failing task's exception at iteration time.
                return list(executor.map(fn, tasks))
            submitted = time.monotonic()
            futures = [executor.submit(fn, task) for task in tasks]
            if time_totals:
                total_hist = telemetry.histogram(
                    "exec_task_total_seconds", backend=self.name
                )
                for future in futures:
                    future.add_done_callback(
                        lambda _f: total_hist.observe(
                            time.monotonic() - submitted
                        )
                    )
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.task_timeout))
                except FutureTimeoutError as exc:
                    telemetry.counter(
                        "exec_task_timeouts_total", backend=self.name
                    ).inc()
                    self._abandon_executor()
                    raise TaskTimeoutError(
                        f"task {index} exceeded the per-task timeout of "
                        f"{self.task_timeout}s",
                        unit=index,
                    ) from exc
            return results
        except BrokenProcessPool as exc:
            telemetry.counter(
                "exec_worker_crashes_total", backend=self.name
            ).inc()
            self._abandon_executor()
            raise WorkerCrashError(
                "a pool worker process died mid-task"
            ) from exc

    def close(self) -> None:
        """Shut the pool down; safe to call repeatedly."""
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # Executors are neither picklable nor deepcopy-able (and neither are
    # locks); drop them and let the pool re-create itself lazily
    # wherever the copy lands.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_executor"] = None
        state.pop("_pool_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()


class ThreadPoolBackend(_PooledBackend):
    """Shared-memory thread pool: overlap blocking epoch work.

    Tasks mutate shared objects in place (``supports_shared_state``), so
    subORAM state stays where it is and transports holding live channel
    state work unchanged.  On CPython the GIL serializes pure-Python
    compute, but epoch stages that block — simulated network latency,
    encrypted-store paging, real sockets in a networked deployment —
    overlap fully, which is what Figure 13's wall-clock speedup measures.
    """

    name = "thread"
    supports_shared_state = True

    def _make_executor(self) -> Executor:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else _default_thread_workers()
        )
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-epoch"
        )


def _sticky_worker_main(conn) -> None:
    """Loop of one long-lived stateful worker process.

    Keeps a ``key -> (version, state)`` cache so the parent can send
    version probes instead of full state.  Wire objects are
    ``(envelope, reply_name, min_bytes)`` triples: ``envelope`` is the
    logical message ``(fn, key, version, has_state, state, args)`` as a
    :class:`~repro.exec.shipping.ShmShipment`,
    :class:`~repro.exec.shipping.PipeShipment`, or plain object;
    ``reply_name`` is the parent-owned shared-memory segment large
    replies should be written into (``None`` disables shm replies); and
    ``min_bytes`` is the parent's shm routing threshold, echoed so both
    directions agree.  Logical replies are ``("ok", new_state, result)``,
    ``("miss", None, None)`` when a probe finds no current cached state,
    or ``("error", exc, None)``; "ok" replies carrying bulk state ship
    through the reply segment when it fits and degrade to a
    :class:`~repro.exec.shipping.GrowHint` when not.  Segment
    attachments persist in the caches across epochs — a sticky worker
    maps each segment once, not once per message.
    """
    cache: dict = {}
    request_segments = shipping.AttachCache()
    reply_segments = shipping.AttachCache()
    while True:
        try:
            wire = conn.recv()
        except EOFError:
            break
        if wire is None:
            break
        envelope, reply_name, min_bytes = wire
        try:
            message = shipping.decode(envelope, request_segments.get)
        except Exception as exc:  # segment vanished / mapping failed
            conn.send((("error", RuntimeError(repr(exc)), None), None))
            continue
        fn, key, version, has_state, state, args = message
        try:
            if not has_state:
                cached = cache.get(key)
                if cached is None or cached[0] != version:
                    conn.send((("miss", None, None), None))
                    continue
                state = cached[1]
            new_state, result = fn(state, args)
            cache[key] = (version + 1, new_state)
            reply = ("ok", new_state, result)
        except BaseException as exc:  # propagate to the parent
            reply = ("error", exc, None)
        out = reply
        if reply_name is not None and reply[0] == "ok":
            try:
                out = shipping.encode_reply(
                    reply, reply_segments.get(reply_name),
                    min_bytes=min_bytes,
                )
            except Exception:  # shm failure: fall back to the pipe
                out = reply
        try:
            conn.send((out, None))
        except Exception as exc:  # unpicklable state/result/exception
            conn.send((("error", RuntimeError(repr(exc)), None), None))
    request_segments.close()
    reply_segments.close()
    conn.close()


class _StickyWorker:
    """Parent-side handle of one sticky worker: process + pipe + lock.

    When shipping is enabled the parent owns two shared-memory segments
    per worker — one per transfer direction — created on the first
    message whose out-of-band bytes clear the threshold and grown by
    replace-and-unlink (see :mod:`repro.exec.shipping`).
    """

    def __init__(self, ctx, use_shm: bool = False, on_ship=None,
                 min_bytes: Optional[int] = None):
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_sticky_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.lock = threading.Lock()
        self.use_shm = use_shm and shipping.shm_available()
        self.on_ship = on_ship
        self.min_bytes = shipping.resolve_min_bytes(min_bytes)
        self._send_pool = shipping.RegionPool()
        self._reply_pool = shipping.RegionPool()

    def _send_region(self, nbytes: int):
        # State transfers are roughly symmetric (the mutated state comes
        # back every epoch), so size the reply segment alongside.
        self._reply_pool.ensure(nbytes)
        return self._send_pool.ensure(nbytes)

    def _record(self, direction: str, transport: str, nbytes: int) -> None:
        if self.on_ship is not None:
            self.on_ship(direction, transport, nbytes)

    def request(self, message, timeout: Optional[float] = None) -> tuple:
        """Send one task message and wait for its reply (thread-safe).

        Raises:
            TaskTimeoutError: no reply arrived within ``timeout`` seconds.
                The caller must :meth:`kill` this worker — a late reply
                would desynchronize the request/reply protocol.
        """
        with self.lock:
            if self.use_shm:
                envelope = shipping.encode(
                    message,
                    self._send_region,
                    min_bytes=self.min_bytes,
                    on_ship=lambda transport, nbytes: self._record(
                        "send", transport, nbytes
                    ),
                )
                reply_region = self._reply_pool.region
                reply_name = (
                    reply_region.name if reply_region is not None else None
                )
            else:
                envelope, reply_name = message, None
            self.conn.send((envelope, reply_name, self.min_bytes))
            if timeout is not None and not self.conn.poll(timeout):
                raise TaskTimeoutError(
                    f"sticky worker gave no reply within {timeout}s"
                )
            wire, _ = self.conn.recv()
            if isinstance(wire, shipping.GrowHint):
                # Reply outgrew the segment: grow for next epoch, use the
                # inline pipe shipment now.
                self._reply_pool.ensure(wire.need_bytes)
                self._record("recv", "pipe", wire.need_bytes)
                return shipping.decode(wire.message)
            if isinstance(wire, shipping.ShmShipment):
                self._record("recv", "shm", sum(wire.sizes))
                region = self._reply_pool.region
                if region is None or region.name != wire.name:
                    raise WorkerCrashError(
                        "sticky worker replied through an unknown "
                        "shared-memory segment"
                    )
                return shipping.decode(wire, lambda _name: region)
            return shipping.decode(wire)

    def _close_segments(self) -> None:
        self._send_pool.close()
        self._reply_pool.close()

    def stop(self) -> None:
        """Ask the worker to exit and reap the process."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()
        self._close_segments()

    def kill(self) -> None:
        """Forcefully terminate a stuck or crashed worker and reap it."""
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - defensive
            pass
        self._close_segments()


class ProcessPoolBackend(_PooledBackend):
    """Worker-process pool: true multi-core epoch execution.

    Stage functions and tasks are pickled to workers; mutated state
    (each subORAM's encrypted store) is shipped back by value and
    reinstalled by the epoch driver, so results remain byte-identical to
    serial execution.  Closures over live channels cannot cross the
    process boundary (``supports_shared_state`` is False); the driver
    rejects such transports with a
    :class:`~repro.errors.ConfigurationError`.

    **Cross-epoch state cache.**  ``map_stateful`` runs on dedicated
    *sticky* workers with per-key affinity: each worker keeps its keys'
    latest state in memory, the parent tracks a cheap version token per
    key, and an unchanged token turns the per-epoch state shipment into
    a tiny version probe.  ``state_cache_stats`` counts the outcomes
    (``hits`` — probe succeeded, nothing shipped; ``misses`` — probe
    failed, full state re-shipped; ``full_ships`` — every transfer of
    full state, including first sends).

    **Shared-memory state shipping.**  Even a probe hit ships the
    mutated state *back* every epoch, so by default (``shm_state=None``)
    bulk state bytes move through per-worker
    ``multiprocessing.shared_memory`` segments instead of the pickle
    pipe (see :mod:`repro.exec.shipping`): one copy into the segment,
    pipe traffic reduced to a tiny envelope.  Byte volume per transport
    is exported as ``exec_state_bytes_total{transport=shm|pipe,
    direction=send|recv}`` (and ships as ``exec_state_ships_total``).
    Disable with ``shm_state=False`` or ``SNOOPY_NO_SHM=1``; any shm
    failure silently falls back to plain pipe pickling.
    """

    name = "process"
    supports_shared_state = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        shm_state: Optional[bool] = None,
        shm_min_bytes: Optional[int] = None,
    ):
        super().__init__(max_workers, task_timeout)
        self._sticky: Dict[int, _StickyWorker] = {}
        # Guards the sticky-worker table so overlapping map_stateful
        # dispatches never double-spawn (or leak) a slot's worker.
        self._sticky_lock = threading.Lock()
        #: key -> (version, state object, token) from the previous call.
        self._state_cache: Dict[object, tuple] = {}
        self.state_cache_stats = {"hits": 0, "misses": 0, "full_ships": 0}
        #: Whether sticky-worker state rides shared-memory segments.
        self.shm_state = shipping.shipping_enabled(shm_state)
        #: Byte threshold routing state to shm vs the pipe (``None``
        #: resolves ``SNOOPY_SHM_MIN_BYTES`` / the module default).
        self.shm_min_bytes = shipping.resolve_min_bytes(shm_min_bytes)

    # ------------------------------------------------------------------
    # Stateless map (unchanged): ordinary executor pool
    # ------------------------------------------------------------------
    def _make_executor(self) -> Executor:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else (os.cpu_count() or 1)
        )
        return ProcessPoolExecutor(max_workers=workers)

    # ------------------------------------------------------------------
    # Stateful map: sticky workers + version-probe protocol
    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return (
            self.max_workers
            if self.max_workers is not None
            else (os.cpu_count() or 1)
        )

    def _sticky_worker(self, slot: int) -> _StickyWorker:
        with self._sticky_lock:
            worker = self._sticky.get(slot)
            if worker is None or not worker.process.is_alive():
                worker = _StickyWorker(
                    multiprocessing.get_context(),
                    use_shm=self.shm_state,
                    on_ship=self._record_ship,
                    min_bytes=self.shm_min_bytes,
                )
                self._sticky[slot] = worker
            return worker

    def _record_ship(
        self, direction: str, transport: str, nbytes: int
    ) -> None:
        """Count one state transfer per transport/direction (telemetry)."""
        self.telemetry.counter(
            "exec_state_ships_total",
            backend=self.name,
            transport=transport,
            direction=direction,
        ).inc()
        self.telemetry.counter(
            "exec_state_bytes_total",
            backend=self.name,
            transport=transport,
            direction=direction,
        ).inc(nbytes)

    @staticmethod
    def _slot_of(key, num_workers: int) -> int:
        return zlib.crc32(repr(key).encode()) % num_workers

    def map_stateful(self, fn, tasks, token=None) -> list:
        """Run stateful units on sticky workers; results in task order.

        See :meth:`ExecutionBackend.map_stateful` for the contract.  Keys
        map deterministically to workers, so a key's cached state is
        found again next epoch; tasks for different workers run
        concurrently, tasks sharing a worker run in task order.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        num_workers = self._worker_count()
        groups: Dict[int, List[int]] = {}
        for index, task in enumerate(tasks):
            slot = self._slot_of(task[0], num_workers)
            groups.setdefault(slot, []).append(index)
        # Spawn missing workers from the dispatching thread (forking from
        # the per-group threads below would be fork-unsafe).
        for slot in groups:
            self._sticky_worker(slot)

        results: list = [None] * len(tasks)
        failures: Dict[int, BaseException] = {}

        def run_group(slot: int, indices: List[int]) -> None:
            for index in indices:
                if failures:
                    return
                key, state, args = tasks[index]
                try:
                    with self.telemetry.time(
                        "exec_task_total_seconds", backend=self.name
                    ):
                        results[index] = self._run_sticky_task(
                            slot, fn, key, state, args, token
                        )
                except BaseException as exc:
                    failures[index] = exc
                    return

        threads = [
            threading.Thread(target=run_group, args=(slot, indices))
            for slot, indices in groups.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[min(failures)]
        return results

    #: state_cache_stats key -> ``exec_state_cache_total`` event label.
    _CACHE_EVENTS = {"hits": "hit", "misses": "miss", "full_ships": "full_ship"}

    def _note_cache(self, outcome: str) -> None:
        """Count one state-cache outcome (dict stats + telemetry mirror)."""
        self.state_cache_stats[outcome] += 1
        self.telemetry.counter(
            "exec_state_cache_total", event=self._CACHE_EVENTS[outcome]
        ).inc()

    def _note_timeout(self) -> None:
        """Count one sticky-task timeout on the telemetry registry."""
        self.telemetry.counter(
            "exec_task_timeouts_total", backend=self.name
        ).inc()

    def _discard_worker(self, slot: int, key) -> None:
        """Kill one sticky worker and drop the key's state-cache entry.

        After a timeout or double crash nothing the worker later says can
        be trusted (a late reply would desync the pipe protocol), so the
        process is killed outright.  Dropping the parent's cache entry
        forces a full state re-ship on the retry; other keys cached on
        the same (now respawned) worker miss their probe and re-ship too.
        """
        with self._sticky_lock:
            worker = self._sticky.pop(slot, None)
        if worker is not None:
            worker.kill()
        self._state_cache.pop(key, None)

    def _run_sticky_task(self, slot, fn, key, state, args, token) -> tuple:
        worker = self._sticky_worker(slot)
        timeout = self.task_timeout
        current_token = token(state) if token is not None else None
        cached = self._state_cache.get(key)
        version = cached[0] if cached is not None else 0
        probe = (
            cached is not None
            and cached[1] is state
            and current_token is not None
            and cached[2] == current_token
        )
        reply = None
        if probe:
            try:
                reply = worker.request(
                    (fn, key, version, False, None, args), timeout=timeout
                )
            except (EOFError, BrokenPipeError, OSError):
                reply = ("miss", None, None)
            except TaskTimeoutError as exc:
                self._note_timeout()
                self._discard_worker(slot, key)
                raise TaskTimeoutError(
                    f"stateful task for key {key!r} exceeded the per-task "
                    f"timeout of {timeout}s",
                    unit=_unit_of(key),
                ) from exc
            if reply[0] == "miss":
                self._note_cache("misses")
                reply = None
            else:
                self._note_cache("hits")
        if reply is None:
            self._note_cache("full_ships")
            try:
                reply = worker.request(
                    (fn, key, version, True, state, args), timeout=timeout
                )
            except TaskTimeoutError as exc:
                self._note_timeout()
                self._discard_worker(slot, key)
                raise TaskTimeoutError(
                    f"stateful task for key {key!r} exceeded the per-task "
                    f"timeout of {timeout}s",
                    unit=_unit_of(key),
                ) from exc
            except (EOFError, BrokenPipeError, OSError):
                # Worker died mid-task (e.g. killed); respawn once and
                # re-ship the full state.
                self.telemetry.counter(
                    "exec_worker_crashes_total", backend=self.name
                ).inc()
                with self._sticky_lock:
                    dead = self._sticky.pop(slot, None)
                if dead is not None:
                    dead.kill()  # reap + unlink its shm segments
                self._state_cache.pop(key, None)
                worker = self._sticky_worker(slot)
                self.telemetry.counter(
                    "exec_worker_respawns_total", backend=self.name
                ).inc()
                try:
                    reply = worker.request(
                        (fn, key, version, True, state, args),
                        timeout=timeout,
                    )
                except TaskTimeoutError as exc:
                    self._note_timeout()
                    self._discard_worker(slot, key)
                    raise TaskTimeoutError(
                        f"stateful task for key {key!r} exceeded the "
                        f"per-task timeout of {timeout}s",
                        unit=_unit_of(key),
                    ) from exc
                except (EOFError, BrokenPipeError, OSError) as exc:
                    # The respawned worker died too — give up loudly so
                    # the epoch retry machinery (not this backend)
                    # decides what happens next.
                    self.telemetry.counter(
                        "exec_worker_crashes_total", backend=self.name
                    ).inc()
                    self._discard_worker(slot, key)
                    raise WorkerCrashError(
                        f"sticky worker for key {key!r} died twice "
                        "(respawn and retry also crashed)",
                        unit=_unit_of(key),
                    ) from exc
        status, new_state, result = reply
        if status == "error":
            self._state_cache.pop(key, None)
            raise new_state if isinstance(new_state, BaseException) else (
                RuntimeError(repr(new_state))
            )
        new_token = token(new_state) if token is not None else None
        self._state_cache[key] = (version + 1, new_state, new_token)
        return new_state, result

    def close(self) -> None:
        """Shut down the executor pool and every sticky worker."""
        super().close()
        with self._sticky_lock:
            sticky, self._sticky = self._sticky, {}
        for worker in sticky.values():
            worker.stop()
        self._state_cache.clear()

    # Sticky workers and their pipes cannot cross a process boundary;
    # like the executor, they are dropped and lazily re-created.
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_sticky"] = {}
        state.pop("_sticky_lock", None)
        state["_state_cache"] = {}
        state["state_cache_stats"] = {"hits": 0, "misses": 0, "full_ships": 0}
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._sticky_lock = threading.Lock()
