"""Shared-memory state shipping for the process backend's sticky workers.

The sticky-worker protocol (:mod:`repro.exec.pools`) must move each
subORAM's full state across the process boundary at least once per epoch:
even when the parent's version probe hits, the *reply* carries the
mutated state back.  Pickling that state into the pipe copies every byte
through pickle opcodes and a socket; for stores of any size the copy —
not the compute — becomes the epoch floor.

This module puts the bulk bytes in ``multiprocessing.shared_memory``
segments instead, using pickle protocol 5's out-of-band buffer machinery
as the seam:

* :func:`encode` pickles a message with a ``buffer_callback``, which
  diverts every :class:`pickle.PickleBuffer` a ``__reduce_ex__`` emits —
  in particular the :class:`~repro.suboram.store.EncryptedStore`'s
  contiguous nonce/ciphertext buffers — away from the pickle stream.
  When the diverted bytes clear :data:`SHM_MIN_BYTES`, they are copied
  once into a shared-memory :class:`Region` and only a tiny
  :class:`ShmShipment` envelope (segment name + buffer sizes + the
  residual pickle payload) crosses the pipe.
* :func:`decode` maps the segment and hands the buffer views straight to
  ``pickle.loads(buffers=...)``.  **Aliasing contract:** objects rebuilt
  from out-of-band buffers must copy them (``EncryptedStore`` does),
  because the sender reuses the segment for the next message.

Both directions are covered: the parent owns a send segment *and* a
reply segment per worker (created on first large message, grown by
replace-and-unlink; safe because the protocol is strict request/reply
under the worker's lock).  The worker attaches to whichever segment
names it is told about — :class:`Region` attachments unregister
themselves from the ``resource_tracker`` so a worker exiting does not
unlink segments the parent still owns.  A reply too large for the
current reply segment degrades to an in-pipe :class:`GrowHint` carrying
the payload inline plus the size that *would* have been needed; the
parent grows the segment for next epoch.  Any shared-memory failure
falls back to plain pipe pickling — shipping is a transport
optimization, never a correctness dependency — and the whole layer can
be disabled with ``SNOOPY_NO_SHM=1`` or
``ProcessPoolBackend(shm_state=False)``.

Small states do not take the segment path: below
:data:`SHM_MIN_BYTES` of out-of-band payload (configurable with
``SNOOPY_SHM_MIN_BYTES`` or ``ProcessPoolBackend(shm_min_bytes=...)``,
resolved by :func:`resolve_min_bytes` and propagated to workers over
the sticky wire protocol) the segment setup and mapping costs more
than it saves.  Those messages ride the pipe as a
:class:`PipeShipment`, which reuses the protocol-5 pickling pass
:func:`encode` already performed instead of letting ``Connection.send``
re-pickle the whole message — one pickling pass and one buffer memcpy
either way, so the shipping layer never loses to plain pickling at any
state size (``BENCH_aead.json``'s ``state_ship`` rows pin this).
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Sequence

try:  # pragma: no cover - stdlib, but permit exotic builds without it
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

#: Default byte threshold below which out-of-band bytes ride the pipe
#: (as a :class:`PipeShipment` — still pickled only once).  Override per
#: deployment with ``SNOOPY_SHM_MIN_BYTES`` or per backend with
#: ``ProcessPoolBackend(shm_min_bytes=...)``.
SHM_MIN_BYTES = 64 * 1024

#: Growth headroom: segments are sized to ceil(need * 5 / 4).
_SLACK_NUM, _SLACK_DEN = 5, 4


def resolve_min_bytes(value: Optional[int] = None) -> int:
    """Resolve the shm routing threshold.

    ``value`` wins when given; otherwise the ``SNOOPY_SHM_MIN_BYTES``
    environment variable (bytes, base 10); otherwise
    :data:`SHM_MIN_BYTES`.  Unparseable env values fall back to the
    default rather than crashing a worker at import time.
    """
    if value is not None:
        if value < 0:
            raise ValueError("shm_min_bytes must be non-negative")
        return int(value)
    raw = os.environ.get("SNOOPY_SHM_MIN_BYTES")
    if raw:
        try:
            parsed = int(raw)
        except ValueError:
            return SHM_MIN_BYTES
        if parsed >= 0:
            return parsed
    return SHM_MIN_BYTES


def shm_available() -> bool:
    """Whether this interpreter can create shared-memory segments."""
    return shared_memory is not None


class ShmShipment:
    """Pipe envelope for a message whose bulk bytes live in a segment."""

    __slots__ = ("name", "sizes", "payload")

    def __init__(self, name: str, sizes: List[int], payload: bytes):
        self.name = name
        self.sizes = sizes
        self.payload = payload

    def __reduce__(self):
        return (ShmShipment, (self.name, self.sizes, self.payload))


class PipeShipment:
    """Pipe envelope reusing the pickling pass :func:`encode` already paid.

    Below the shm threshold (or when no segment is available) the naive
    fallback — returning the original message for ``Connection.send`` to
    pickle — pays for a *second* full pickling pass, copying every store
    buffer through pickle opcodes again.  That is exactly the 0.88x
    state-ship regression: small states lost to plain pipe pickling.
    Instead, the already-produced protocol-5 payload plus its diverted
    :class:`pickle.PickleBuffer` views ride the pipe directly; pickling
    the shipment flattens each buffer to ``bytes`` (one memcpy each,
    no second object-graph traversal — and no protocol-5 requirement on
    the connection's own pickler, which still defaults to protocol 4).

    **Aliasing contract:** like :class:`ShmShipment`, the buffers view
    the sender's live state; the sender must put the shipment on the
    wire before mutating the message (the sticky protocol's strict
    request/reply alternation guarantees this).
    """

    __slots__ = ("payload", "buffers")

    def __init__(self, payload: bytes, buffers: Sequence):
        self.payload = payload
        self.buffers = list(buffers)

    def __reduce__(self):
        flat = [
            b if isinstance(b, (bytes, bytearray)) else bytes(b.raw())
            for b in self.buffers
        ]
        return (PipeShipment, (self.payload, flat))


class GrowHint:
    """In-pipe fallback reply: payload inline plus the segment size needed.

    ``message`` is normally a :class:`PipeShipment` (decode it); it may
    also be a plain logical message from a degraded encode path.
    """

    __slots__ = ("message", "need_bytes")

    def __init__(self, message, need_bytes: int):
        self.message = message
        self.need_bytes = need_bytes

    def __reduce__(self):
        return (GrowHint, (self.message, self.need_bytes))


class Region:
    """One shared-memory segment, owned (create/unlink) or attached."""

    def __init__(self, shm, owner: bool):
        self._shm = shm
        self.owner = owner

    @classmethod
    def create(cls, nbytes: int) -> "Region":
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes)
        )
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "Region":
        shm = shared_memory.SharedMemory(name=name)
        # Attaching registers the segment with the resource tracker as if
        # this process owned it, and the tracker would unlink it when this
        # process exits — yanking memory the real owner still uses.
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        """Segment name peers attach by."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Mapped segment capacity in bytes."""
        return self._shm.size

    def write(self, buffers: Sequence) -> List[int]:
        """Copy raw buffers back to back into the segment; returns sizes."""
        view = self._shm.buf
        sizes: List[int] = []
        offset = 0
        for raw in buffers:
            n = raw.nbytes
            view[offset : offset + n] = raw
            sizes.append(n)
            offset += n
        return sizes

    def read(self, sizes: Sequence[int]) -> List[memoryview]:
        """Views of the buffers previously written (no copy)."""
        view = self._shm.buf
        out: List[memoryview] = []
        offset = 0
        for n in sizes:
            out.append(view[offset : offset + n])
            offset += n
        return out

    def close(self) -> None:
        """Unmap, and unlink when this side owns the segment."""
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - defensive
            pass
        if self.owner:
            # An attachment's unregister (above) may have already removed
            # this name from the shared resource tracker; re-register so
            # unlink's own unregister finds it (set semantics — a double
            # add is a no-op, a missing remove is a KeyError traceback).
            if resource_tracker is not None:
                try:
                    resource_tracker.register(
                        self._shm._name, "shared_memory"
                    )
                except Exception:  # pragma: no cover - tracker moved
                    pass
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass


def _sized(need: int) -> int:
    return max(SHM_MIN_BYTES, need * _SLACK_NUM // _SLACK_DEN)


class RegionPool:
    """Owner-side handle of one growable segment (parent per direction)."""

    def __init__(self):
        self.region: Optional[Region] = None

    def ensure(self, nbytes: int) -> Optional[Region]:
        """A region of at least ``nbytes``, growing by replace-and-unlink.

        Safe under the strict request/reply alternation of the sticky
        protocol: by the time the parent replaces a segment, the worker
        holds no outstanding views into the old one.
        """
        if not shm_available():
            return None
        if self.region is None or self.region.size < nbytes:
            old, self.region = self.region, None
            if old is not None:
                old.close()
            self.region = Region.create(_sized(nbytes))
        return self.region

    def close(self) -> None:
        """Unlink and drop the owned segment (idempotent)."""
        region, self.region = self.region, None
        if region is not None:
            region.close()


class AttachCache:
    """Reader-side cache of segment attachments, keyed by name."""

    def __init__(self):
        self._regions: dict = {}

    def get(self, name: str) -> Region:
        """Attachment for ``name``, superseding older attachments."""
        region = self._regions.get(name)
        if region is None:
            # A new name supersedes all prior segments from this peer
            # (the owner unlinked them when it grew).
            self.close()
            region = Region.attach(name)
            self._regions[name] = region
        return region

    def close(self) -> None:
        """Unmap every cached attachment (idempotent)."""
        regions, self._regions = self._regions, {}
        for region in regions.values():
            region.close()


def _release_all(buffers: Sequence) -> None:
    for b in buffers:
        b.release()


def encode(
    message,
    provider: Callable[[int], Optional[Region]],
    min_bytes: Optional[int] = None,
    on_ship=None,
):
    """Encode a message for ``Connection.send``; bulk bytes go to shm.

    ``provider(nbytes)`` returns a region of at least ``nbytes`` or
    ``None``.  Out-of-band bytes clearing ``min_bytes`` (default:
    :func:`resolve_min_bytes`) ship through the region as a
    :class:`ShmShipment`; everything else rides the pipe as a
    :class:`PipeShipment` so the pickling pass is never repeated.  Only
    an encode *failure* returns the plain message for the pipe to pickle
    itself.  ``on_ship(transport, nbytes)`` records the outcome for
    telemetry.
    """
    if min_bytes is None:
        min_bytes = resolve_min_bytes()
    buffers: List[pickle.PickleBuffer] = []
    try:
        payload = pickle.dumps(
            message, protocol=5, buffer_callback=buffers.append
        )
        raws = [b.raw() for b in buffers]
        total = sum(r.nbytes for r in raws)
        if total >= min_bytes:
            region = provider(total)
            if region is not None and region.size >= total:
                sizes = region.write(raws)
                _release_all(buffers)
                if on_ship is not None:
                    on_ship("shm", total)
                return ShmShipment(region.name, sizes, payload)
        if on_ship is not None:
            on_ship("pipe", total)
        return PipeShipment(payload, buffers)
    except Exception:
        # Any shipping failure degrades to plain pipe pickling.
        _release_all(buffers)
        return message


def encode_reply(
    message,
    attachment: Optional[Region],
    min_bytes: Optional[int] = None,
):
    """Worker-side encode into a fixed-size reply attachment.

    Returns a :class:`ShmShipment` when the reply clears ``min_bytes``
    (default: :func:`resolve_min_bytes`) and fits the attachment, a
    :class:`GrowHint` (pipe shipment + needed size) when it cleared the
    threshold but the attachment is absent or too small, and a
    :class:`PipeShipment` otherwise; a failed encode degrades to the
    plain message.
    """
    if min_bytes is None:
        min_bytes = resolve_min_bytes()
    buffers: List[pickle.PickleBuffer] = []
    try:
        payload = pickle.dumps(
            message, protocol=5, buffer_callback=buffers.append
        )
        raws = [b.raw() for b in buffers]
        total = sum(r.nbytes for r in raws)
        if total >= min_bytes:
            if attachment is not None and attachment.size >= total:
                sizes = attachment.write(raws)
                _release_all(buffers)
                return ShmShipment(attachment.name, sizes, payload)
            return GrowHint(PipeShipment(payload, buffers), total)
        return PipeShipment(payload, buffers)
    except Exception:
        _release_all(buffers)
        return message


def decode(obj, resolve: Optional[Callable[[str], Region]] = None):
    """Decode a received object; ``resolve(name)`` maps segment names.

    The out-of-band views are handed to ``pickle.loads`` without copying;
    rebuilt objects own their bytes only because their ``__reduce_ex__``
    counterparts copy on rebuild (the aliasing contract above).
    ``resolve`` may be omitted when the caller knows only pipe shipments
    (or plain messages) can arrive.
    """
    if isinstance(obj, PipeShipment):
        return pickle.loads(obj.payload, buffers=obj.buffers)
    if isinstance(obj, ShmShipment):
        if resolve is None:
            raise RuntimeError(
                "shm shipment arrived but no segment resolver is configured"
            )
        region = resolve(obj.name)
        views = region.read(obj.sizes)
        try:
            return pickle.loads(obj.payload, buffers=views)
        finally:
            for view in views:
                view.release()
    return obj


def shipping_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the shm-shipping kill-switch.

    ``flag`` wins when given; otherwise shipping is on unless the
    ``SNOOPY_NO_SHM`` environment variable is set to a non-empty value
    or shared memory is unavailable.
    """
    if flag is not None:
        return bool(flag) and shm_available()
    return shm_available() and not os.environ.get("SNOOPY_NO_SHM")
