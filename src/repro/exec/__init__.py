"""Execution backends: how a Snoopy epoch's independent work units run.

The paper's scalability argument (§6, Figures 11/13) assumes the L load
balancers and S subORAMs run *concurrently*: equation (1) takes the max,
not the sum, of the pipeline stages.  This package supplies that
concurrency as a pluggable layer so one functional codebase serves both
purposes — auditable serial execution and parallel execution whose
wall-clock actually exhibits the paper's scaling behaviour.

Three backends implement the common :class:`ExecutionBackend` interface:

* ``serial`` — :class:`SerialBackend`: run tasks inline, in order.  The
  reference semantics; zero overhead.
* ``thread`` — :class:`ThreadPoolBackend`: a shared-memory thread pool.
  SubORAM state is mutated in place; blocking work (simulated network
  latency, paging, real sockets) overlaps across components.
* ``process`` — :class:`ProcessPoolBackend`: worker processes for true
  multi-core execution; subORAM state is shipped to workers and back by
  value.

Every backend preserves the *fixed balancer order within each subORAM*
that Appendix C's linearizability proof requires: the epoch driver hands
each subORAM its L batches as one ordered task, and backends only
parallelize *across* tasks, never within one.  Results are therefore
byte-identical across backends (``tests/test_parallel_equivalence.py``).

Backends are selected by spec string — ``"serial"``, ``"thread"``,
``"thread:8"``, ``"process"``, ``"process:4"`` — via :func:`make_backend`,
which is what :class:`~repro.core.config.SnoopyConfig.execution_backend`
feeds.  Passing an :class:`ExecutionBackend` instance anywhere a spec is
accepted also works::

    from repro import Snoopy, SnoopyConfig

    store = Snoopy(SnoopyConfig(num_suborams=4, execution_backend="thread"))
    # ... or explicitly:
    from repro.exec import ThreadPoolBackend
    store = Snoopy(SnoopyConfig(num_suborams=4), backend=ThreadPoolBackend(8))
"""

from __future__ import annotations

from typing import Optional, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.exec.backend import ExecutionBackend, SerialBackend
from repro.exec.pools import ProcessPoolBackend, ThreadPoolBackend

#: Registry of spec name -> backend class (the BCache-style pluggable
#: backend split: callers name a backend, the registry builds it).
BACKENDS: dict = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}

BackendSpec = Union[str, ExecutionBackend]


def parse_spec(spec: str) -> Tuple[Type[ExecutionBackend], Optional[int]]:
    """Split a ``"name"`` / ``"name:workers"`` spec into (class, workers).

    Raises:
        ConfigurationError: unknown backend name or malformed worker count.
    """
    name, _, workers_part = str(spec).partition(":")
    cls = BACKENDS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; "
            f"expected one of {sorted(BACKENDS)}"
        )
    workers: Optional[int] = None
    if workers_part:
        try:
            workers = int(workers_part)
        except ValueError:
            raise ConfigurationError(
                f"backend spec {spec!r}: worker count must be an integer"
            ) from None
        if workers <= 0:
            raise ConfigurationError(
                f"backend spec {spec!r}: worker count must be positive"
            )
    return cls, workers


def make_backend(
    spec: BackendSpec = "serial",
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> ExecutionBackend:
    """Build (or pass through) an execution backend.

    Args:
        spec: a spec string (``"serial"``, ``"thread"``, ``"thread:8"``,
            ``"process"``, ``"process:4"``) or an already-constructed
            :class:`ExecutionBackend`, returned unchanged.
        max_workers: pool size; overridden by a ``:N`` suffix in the spec.
        task_timeout: per-task timeout in seconds for pooled backends; an
            overrun raises :class:`~repro.errors.TaskTimeoutError`.
            Ignored for ``serial`` (inline execution cannot be bounded)
            and for an already-constructed backend instance.

    Raises:
        ConfigurationError: the spec names no registered backend.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    cls, spec_workers = parse_spec(spec)
    workers = spec_workers if spec_workers is not None else max_workers
    if cls is SerialBackend:
        return cls()
    return cls(max_workers=workers, task_timeout=task_timeout)


__all__ = [
    "BACKENDS",
    "BackendSpec",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "make_backend",
    "parse_spec",
]
