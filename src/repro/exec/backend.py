"""The execution-backend interface and the serial reference backend.

An :class:`ExecutionBackend` answers one question for the epoch driver:
*how do independent units of epoch work run?*  The driver expresses each
pipeline stage as ``backend.map(stage_fn, tasks)`` where the tasks are
mutually independent; the backend decides whether they run one after
another (:class:`SerialBackend`), on a shared-memory thread pool
(:class:`~repro.exec.pools.ThreadPoolBackend`), or on worker processes
(:class:`~repro.exec.pools.ProcessPoolBackend`).

Backends make two guarantees the driver relies on:

* ``map`` returns results **in task order** (never completion order), so
  the fixed balancer order of Appendix C's linearization proof survives
  any scheduling;
* the first task exception propagates to the caller, so security aborts
  such as :class:`~repro.errors.BatchOverflowError` surface loudly no
  matter where the task ran;
* ``map`` dispatch is **overlap-safe**: distinct threads may issue
  ``map`` / ``map_stateful`` calls concurrently (the pipelined epoch
  scheduler's builder and matcher threads do exactly that while the
  executor thread runs ``map_stateful``).  The serial backend is
  trivially reentrant; pooled backends guard their lazy pool/worker
  creation with a lock, and the underlying executors accept concurrent
  submissions.

``supports_shared_state`` distinguishes in-process backends (mutations a
task makes are visible to the caller) from process backends (state must
be shipped back by value); the driver uses it to route subORAM state and
to reject transports that cannot cross a process boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.telemetry import NULL_TELEMETRY, resolve_telemetry

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def _call_stateful(packed):
    """Run one ``map_stateful`` unit inline: ``fn(state, args)``."""
    fn, state, args = packed
    return fn(state, args)


class ExecutionBackend(ABC):
    """How independent units of epoch work execute (§6's parallel pipeline).

    Subclasses define :meth:`map`; everything else (context management,
    idempotent :meth:`close`) is shared.  Backends are reusable across
    epochs and deployments, and cheap to construct: pools are created
    lazily on first use.
    """

    #: Registry/spec name of the backend (e.g. ``"serial"``, ``"thread"``).
    name: str = "abstract"

    #: True when a task's in-place mutations are visible to the caller
    #: (serial and thread backends).  Process backends return state by
    #: value instead, and cannot execute non-picklable closures.
    supports_shared_state: bool = True

    #: Telemetry handle, defaulting to the shared no-op; deployments call
    #: :meth:`attach_telemetry` to wire in their live handle.  Pooled
    #: backends record per-task queue-wait/run timings and fault counters
    #: through it; the serial backend stays instrumentation-free (its
    #: stage timings are exactly the driver's, so per-task metrics would
    #: only duplicate them).
    telemetry = NULL_TELEMETRY

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`~repro.telemetry.Telemetry` handle (or None) in."""
        self.telemetry = resolve_telemetry(telemetry)

    @abstractmethod
    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Sequence[_Task],
    ) -> List[_Result]:
        """Run ``fn`` over ``tasks``; results in task order.

        Args:
            fn: the stage function.  For process backends it must be a
                picklable module-level callable.
            tasks: independent work items (picklable for process backends).

        Returns:
            ``[fn(task) for task in tasks]`` — possibly computed
            concurrently, but always returned in input order.
        """

    def map_stateful(self, fn, tasks, token=None) -> list:
        """Run stateful units; results in task order.

        Each task is a ``(key, state, args)`` triple: ``key`` identifies
        the long-lived state across calls (e.g. ``(namespace,
        suboram_index)``), ``state`` is the current state object, and
        ``fn(state, args)`` must return ``(new_state, result)`` pairs —
        which is also what this method returns, in task order.

        ``token`` is an optional callable ``state -> hashable-or-None``
        giving a cheap version of the state (``None`` means "not
        cacheable").  Backends with worker-affinity caches (the process
        backend) use it to skip re-shipping state whose token is
        unchanged since the last call; shared-memory backends ignore it
        — state never leaves the caller's address space, so there is
        nothing to cache.
        """
        del token  # shared-memory default: nothing to cache
        return self.map(
            _call_stateful, [(fn, state, args) for (_key, state, args) in tasks]
        )

    def close(self) -> None:
        """Release pooled workers; idempotent.  No-op for serial."""

    def __enter__(self) -> "ExecutionBackend":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the backend."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialBackend(ExecutionBackend):
    """Run every task inline, in order, on the calling thread.

    The reference backend: zero concurrency, zero overhead, and the
    behaviour every parallel backend must be byte-for-byte equivalent to
    (``tests/test_parallel_equivalence.py`` enforces this).
    """

    name = "serial"
    supports_shared_state = True

    def map(self, fn, tasks) -> list:
        """Apply ``fn`` to each task sequentially."""
        return [fn(task) for task in tasks]
