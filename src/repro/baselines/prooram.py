"""PRO-ORAM-lite (Tople et al., RAID 2019): practical read-only ORAM.

§10: "PRO-ORAM, a read-only ORAM running inside an enclave, parallelizes
the shuffling of batches of sqrt(N) requests across cores, offering
competitive performance for read workloads.  Snoopy, in contrast,
supports both reads and writes."

Structure (a read-only refinement of square-root ORAM): a permuted store
plus a sqrt(N) shelter; unlike the classic design, the next epoch's
oblivious shuffle is performed *incrementally* — each access contributes
a fixed quantum of shuffle work that the enclave distributes across its
cores — so accesses never stall on a monolithic reshuffle.  Writes are
rejected (the design's limitation and Snoopy's contrast point).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.crypto.keys import random_key
from repro.errors import ReproError
from repro.oblivious.shuffle import permutation_of
from repro.utils.validation import require_positive


class ReadOnlyViolation(ReproError):
    """A write was issued to the read-only PRO-ORAM."""


class ProOram:
    """A read-only ORAM with incremental, parallelizable reshuffles.

    Args:
        objects: the (immutable) contents.
        workers: cores available for shuffle work (speeds up the
            background shuffle quantum, Fig. 13-style).
    """

    def __init__(
        self,
        objects: Dict[int, bytes],
        workers: int = 4,
        rng: Optional[random.Random] = None,
    ):
        require_positive(workers, "workers")
        if not objects:
            raise ReproError("PRO-ORAM needs at least one object")
        self._rng = rng if rng is not None else random.Random()
        self.workers = workers
        self._keys = sorted(objects)
        self._values = [objects[k] for k in self._keys]
        self._index_of = {key: i for i, key in enumerate(self._keys)}
        self.capacity = len(self._keys)
        self.shelter_size = max(1, math.isqrt(self.capacity))
        self.num_dummies = self.shelter_size

        self.accesses = 0
        self.background_shuffles = 0
        # Total shuffle work per epoch, split into per-access quanta so the
        # sqrt(N) accesses of an epoch collectively fund the next shuffle.
        n = self.capacity + self.num_dummies
        self._shuffle_total_work = n * max(1, math.ceil(math.log2(max(2, n))))
        self._shuffle_progress = 0
        self._install_layout()

    # ------------------------------------------------------------------
    # Layout management
    # ------------------------------------------------------------------
    def _install_layout(self) -> None:
        """Adopt a freshly shuffled layout; reset the shelter."""
        size = self.capacity + self.num_dummies
        permutation = permutation_of(size, random_key(self._rng))
        self._slot_of = {
            logical: slot for slot, logical in enumerate(permutation)
        }
        self._sheltered: set = set()
        self._next_dummy = 0
        self._epoch_accesses = 0
        self._shuffle_progress = 0
        self.background_shuffles += 1

    def shuffle_quantum_per_access(self) -> int:
        """Work units each access contributes to the background shuffle."""
        return math.ceil(
            self._shuffle_total_work / (self.shelter_size * self.workers)
        )

    # ------------------------------------------------------------------
    # Read protocol
    # ------------------------------------------------------------------
    def read(self, key: int) -> bytes:
        """One read: shelter scan + one permuted-store slot + shuffle work."""
        if key not in self._index_of:
            raise KeyError(f"key {key} not stored")
        self.accesses += 1
        self._epoch_accesses += 1
        logical = self._index_of[key]

        # Scan the shelter (membership only — values are immutable).
        if logical in self._sheltered:
            dummy_logical = self.capacity + self._next_dummy
            self._next_dummy = (self._next_dummy + 1) % self.num_dummies
            _ = self._slot_of[dummy_logical]  # touch a dummy slot
        else:
            _ = self._slot_of[logical]
            self._sheltered.add(logical)

        # Contribute this access's shuffle quantum.
        self._shuffle_progress += self.shuffle_quantum_per_access() * self.workers
        if (
            self._epoch_accesses >= self.shelter_size
            and self._shuffle_progress >= self._shuffle_total_work
        ):
            self._install_layout()
        return self._values[logical]

    def write(self, key: int, value: bytes):
        """Rejected: PRO-ORAM is read-only (Snoopy's contrast point)."""
        raise ReadOnlyViolation(
            "PRO-ORAM supports only reads; use Snoopy for mixed workloads"
        )

    def batch_read(self, keys: List[int]) -> List[bytes]:
        """Sequential reads of a batch (the sqrt(N)-request epoch unit)."""
        return [self.read(key) for key in keys]
