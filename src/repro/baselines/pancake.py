"""Pancake-lite (Grubbs et al., USENIX Security 2020): frequency smoothing.

Pancake takes a different road than ORAM (§10): a trusted proxy that
knows the plaintext access *distribution* transforms queries so the
server-visible accesses are uniformly distributed over an encrypted,
non-oblivious store.  Two mechanisms:

* **selective replication** — key ``k`` with probability ``pi(k)`` gets
  ``r(k) ~ pi(k) * n'`` replicas, so each replica's real-access
  probability is ~uniform;
* **fake queries** — every incoming request is padded into a batch of
  ``B`` server accesses; slots not used by real queries are drawn from a
  *fake* distribution chosen so that real + fake per-replica rates are
  exactly uniform.

The proxy remains a central bottleneck and must track the distribution —
"the proxy remains a bottleneck as it must maintain dynamic state about
the request distribution" — which is precisely the contrast with
Snoopy's distribution-independent batching.

Simplifications vs the full system: the distribution is given (not
estimated online), and writes synchronously update every replica of the
key (Pancake spreads the update over subsequent accesses).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.utils.validation import require, require_positive

DEFAULT_BATCH = 3  # Pancake's B (three server accesses per real query)


class PancakeProxy:
    """A frequency-smoothing proxy over an encrypted key-value server.

    Args:
        objects: initial contents.
        distribution: access probability per key (must sum to ~1).
        replication_factor: total replicas ~= factor * len(objects).
        batch_size: server accesses issued per client request.
    """

    def __init__(
        self,
        objects: Dict[int, bytes],
        distribution: Dict[int, float],
        replication_factor: float = 2.0,
        batch_size: int = DEFAULT_BATCH,
        rng: Optional[random.Random] = None,
    ):
        require_positive(batch_size, "batch_size")
        require(set(distribution) == set(objects),
                "distribution must cover exactly the stored keys")
        total = sum(distribution.values())
        require(abs(total - 1.0) < 1e-6, "distribution must sum to 1")
        self._rng = rng if rng is not None else random.Random()
        self.batch_size = batch_size

        # Selective replication: r(k) ~ pi(k) * n'.
        target_replicas = max(len(objects), int(replication_factor * len(objects)))
        self._replicas: Dict[int, List[int]] = {}
        self._server: Dict[int, bytes] = {}  # replica id -> ciphertext value
        self.access_log: List[int] = []  # server-visible replica accesses
        next_replica = 0
        for key in sorted(objects):
            count = max(1, round(distribution[key] * target_replicas))
            ids = list(range(next_replica, next_replica + count))
            next_replica += count
            self._replicas[key] = ids
            for replica in ids:
                self._server[replica] = objects[key]
        self.num_replicas = next_replica

        # Fake distribution: per replica, the uniform target rate minus the
        # real rate; real rate of replica of key k = pi(k)/r(k).
        uniform = 1.0 / self.num_replicas
        weights = []
        for key in sorted(objects):
            real_rate = distribution[key] / len(self._replicas[key])
            deficit = max(0.0, uniform - real_rate / self.batch_size)
            for replica in self._replicas[key]:
                weights.append((replica, deficit))
        total_weight = sum(w for _, w in weights) or 1.0
        self._fake_replicas = [replica for replica, _ in weights]
        self._fake_weights = [w / total_weight for _, w in weights]

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------
    def _touch(self, replica: int) -> bytes:
        self.access_log.append(replica)
        return self._server[replica]

    def _fake_access(self) -> None:
        [replica] = self._rng.choices(
            self._fake_replicas, weights=self._fake_weights
        )
        self._touch(replica)

    def read(self, key: int) -> bytes:
        """Serve a read: one real replica access + B-1 smoothing accesses."""
        replica = self._rng.choice(self._replicas[key])
        value = self._touch(replica)
        for _ in range(self.batch_size - 1):
            self._fake_access()
        return value

    def write(self, key: int, value: bytes) -> bytes:
        """Serve a write; returns the prior value.

        Simplification: all replicas update now (the real system defers);
        the *visible* access pattern is still one touched replica plus
        fakes — replica rewrites ride along as ciphertext refreshes.
        """
        prior = self._server[self._replicas[key][0]]
        for replica in self._replicas[key]:
            self._server[replica] = value
        replica = self._rng.choice(self._replicas[key])
        self._touch(replica)
        for _ in range(self.batch_size - 1):
            self._fake_access()
        return prior

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def replica_count(self, key: int) -> int:
        """Number of replicas provisioned for ``key``."""
        return len(self._replicas[key])

    def observed_histogram(self) -> Dict[int, int]:
        """Server-visible access counts per replica."""
        histogram: Dict[int, int] = {r: 0 for r in range(self.num_replicas)}
        for replica in self.access_log:
            histogram[replica] += 1
        return histogram

    def smoothness(self) -> float:
        """Max/mean ratio of the observed replica histogram (1.0 = flat)."""
        histogram = self.observed_histogram()
        counts = list(histogram.values())
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean
