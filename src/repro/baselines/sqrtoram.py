"""Square-root ORAM (Goldreich-Ostrovsky), the classic hierarchical design.

The paper's introduction traces the scalability bottleneck to ORAM's two
traditional properties: a dynamic logical-to-physical mapping and a
hierarchical/tree structure with a hot top level (§1).  Square-root ORAM
is the simplest member of the hierarchical family and makes both
properties explicit:

* ``n`` blocks live in a pseudorandomly permuted main area plus a
  ``sqrt(n)``-sized *shelter*;
* each access first scans the whole shelter; if the block was sheltered,
  a *dummy* main-area slot is touched, otherwise the block's permuted
  slot is; the result joins the shelter;
* after ``sqrt(n)`` accesses the structure is obliviously reshuffled
  (here via :func:`repro.oblivious.shuffle.oblivious_shuffle`) — the
  serialized, unparallelizable step that caps throughput.

Included as the representative of the hierarchical class (ObliviStore's
SSS-ORAM descends from it) for baseline comparisons and tests.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.crypto.keys import random_key
from repro.oblivious.shuffle import permutation_of
from repro.utils.validation import require_positive


class _Slot:
    __slots__ = ("key", "value")

    def __init__(self, key: int, value: Optional[bytes]):
        self.key = key
        self.value = value


class SqrtOram:
    """A square-root ORAM over integer keys ``0..capacity-1``.

    Args:
        capacity: number of logical blocks (keys are ``range(capacity)``).
        rng: randomness source for permutation keys and dummy selection.
    """

    def __init__(self, capacity: int, rng: Optional[random.Random] = None):
        require_positive(capacity, "capacity")
        self.capacity = capacity
        self._rng = rng if rng is not None else random.Random()
        self.shelter_size = max(1, math.isqrt(capacity))
        # Main area: capacity real slots + sqrt(n) dummy slots, permuted.
        self.num_dummies = self.shelter_size
        self._values: List[Optional[bytes]] = [None] * capacity
        self.accesses = 0
        self.reshuffles = 0
        self._epoch_accesses = 0
        self._reshuffle()

    # ------------------------------------------------------------------
    # Oblivious reshuffle
    # ------------------------------------------------------------------
    def _reshuffle(self) -> None:
        """Re-permute main area; drain the shelter back into it."""
        self.reshuffles += 1
        self._epoch_accesses = 0
        key = random_key(self._rng)
        size = self.capacity + self.num_dummies
        permutation = permutation_of(size, key)
        # slot_of[logical index] = physical slot after the shuffle.
        self._slot_of = {logical: slot for slot, logical in enumerate(permutation)}
        self._main: List[_Slot] = [None] * size  # type: ignore[list-item]
        for logical in range(self.capacity):
            self._main[self._slot_of[logical]] = _Slot(
                logical, self._values[logical]
            )
        for dummy in range(self.num_dummies):
            logical = self.capacity + dummy
            self._main[self._slot_of[logical]] = _Slot(-1 - dummy, None)
        self._shelter: List[_Slot] = []
        self._next_dummy = 0

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------
    def access(self, key: int, new_value: Optional[bytes] = None) -> Optional[bytes]:
        """One access: shelter scan + one main-area fetch (+ periodic reshuffle)."""
        if not 0 <= key < self.capacity:
            raise KeyError(f"key {key} outside capacity {self.capacity}")
        self.accesses += 1
        self._epoch_accesses += 1

        # 1. Scan the entire shelter (oblivious: full scan every time).
        sheltered = None
        for slot in self._shelter:
            if slot.key == key:
                sheltered = slot

        # 2. Touch exactly one main-area slot: the real one if the block
        # was not sheltered, else the next unused dummy.
        if sheltered is None:
            physical = self._slot_of[key]
            fetched = self._main[physical]
            block = _Slot(fetched.key, fetched.value)
        else:
            dummy_logical = self.capacity + self._next_dummy
            self._next_dummy = (self._next_dummy + 1) % self.num_dummies
            _ = self._main[self._slot_of[dummy_logical]]
            block = sheltered

        result = block.value
        if new_value is not None:
            block.value = new_value
            self._values[key] = new_value
        if sheltered is None:
            self._shelter.append(block)
            self._values[key] = block.value

        # 3. Reshuffle after sqrt(n) accesses.
        if self._epoch_accesses >= self.shelter_size:
            self._reshuffle()
        return result

    def read(self, key: int) -> Optional[bytes]:
        """Read one block."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one block; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load values and build the first permuted layout."""
        for key, value in objects.items():
            self._values[key] = value
        self._reshuffle()

    # ------------------------------------------------------------------
    # Cost accounting (for baseline comparisons)
    # ------------------------------------------------------------------
    def amortized_work_per_access(self) -> float:
        """Shelter scan + one fetch + amortized reshuffle, in touched slots.

        ``O(sqrt(n))`` shelter scan per access plus an ``O(n log^2 n)``
        oblivious shuffle every ``sqrt(n)`` accesses — the asymptotics
        that make the hierarchical family throughput-poor.
        """
        n = self.capacity
        shuffle_cost = (n + self.num_dummies) * max(
            1, math.ceil(math.log2(max(2, n))) ** 2
        )
        return self.shelter_size + 1 + shuffle_cost / self.shelter_size
