"""PrivateFS / ConcurORAM-lite: query-log-coordinated parallel ORAM (§10).

"PrivateFS and ConcurORAM coordinate concurrent requests to shared data
using an encrypted query log on top of a hierarchical ORAM or a
tree-based ORAM, respectively.  This query log quickly becomes a
serialization bottleneck."

The scheme: concurrent clients *append* their query to an encrypted log
and scan the log for earlier pending queries to the same block (so two
clients never fetch the same path twice — the second is served from the
log).  Periodically the log is committed: its writes are applied to the
underlying ORAM and the log is cleared.  Every operation serializes
through log append + full log scan — the bottleneck in question, which
``log_scans`` and ``appends`` make measurable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.pathoram import PathOram
from repro.types import OpType, Request, Response
from repro.utils.validation import require_positive


class _LogEntry:
    __slots__ = ("key", "value", "is_write")

    def __init__(self, key: int, value: Optional[bytes], is_write: bool):
        self.key = key
        self.value = value
        self.is_write = is_write


class QueryLogOram:
    """A query-log coordinator over a Path ORAM.

    Args:
        capacity: number of blocks.
        commit_every: log size triggering a commit (the period the real
            systems derive from their de-amortized eviction schedules).
    """

    def __init__(
        self,
        capacity: int,
        commit_every: int = 8,
        rng: Optional[random.Random] = None,
    ):
        require_positive(commit_every, "commit_every")
        self._rng = rng if rng is not None else random.Random()
        self.oram = PathOram(capacity, rng=self._rng)
        self.commit_every = commit_every
        self._log: List[_LogEntry] = []
        self.appends = 0
        self.log_scans = 0
        self.commits = 0

    # ------------------------------------------------------------------
    # The serialized access path
    # ------------------------------------------------------------------
    def access(self, key: int, new_value: Optional[bytes] = None) -> Optional[bytes]:
        """One coordinated access: scan the log, maybe fetch, append."""
        # Every request scans the whole log (obliviously in the real
        # system) — the serialization bottleneck.
        self.log_scans += 1
        pending: Optional[_LogEntry] = None
        for entry in self._log:
            if entry.key == key:
                pending = entry  # latest wins; keep scanning

        if pending is not None:
            result = pending.value
        else:
            result = self.oram.read(key)

        self.appends += 1
        self._log.append(
            _LogEntry(
                key,
                new_value if new_value is not None else result,
                new_value is not None,
            )
        )
        if len(self._log) >= self.commit_every:
            self.commit()
        return result

    def commit(self) -> None:
        """Apply the log's writes to the ORAM and clear it."""
        self.commits += 1
        latest_write: Dict[int, bytes] = {}
        for entry in self._log:
            if entry.is_write and entry.value is not None:
                latest_write[entry.key] = entry.value
        for key, value in latest_write.items():
            self.oram.write(key, value)
        self._log.clear()

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one block through the query log."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one block through the query log; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the underlying tree."""
        self.oram.initialize(objects)

    def batch(self, requests: List[Request]) -> List[Response]:
        """Serve requests in order; each sees earlier requests' effects."""
        responses = []
        for request in requests:
            value = self.access(
                request.key,
                request.value if request.op is OpType.WRITE else None,
            )
            responses.append(
                Response(
                    key=request.key,
                    value=value,
                    client_id=request.client_id,
                    seq=request.seq,
                )
            )
        return responses
