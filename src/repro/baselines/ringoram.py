"""Ring ORAM (Ren et al., USENIX Security 2015).

The ORAM Obladi parallelizes.  Relative to Path ORAM, Ring ORAM reads only
*one* slot per bucket on an access (the target block if present, a fresh
dummy otherwise) and amortizes shuffling into an ``EvictPath`` every ``A``
accesses along reverse-lexicographic paths, plus an ``EarlyReshuffle``
when a bucket runs out of unread dummies.

This implementation keeps the protocol structure faithful — per-bucket
valid bits, access counts, deterministic eviction order, early reshuffles
— while using plain Python containers for the bucket bodies.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.utils.bits import next_pow2
from repro.utils.validation import require_positive


class _Block:
    __slots__ = ("key", "value", "leaf")

    def __init__(self, key: int, value: bytes, leaf: int):
        self.key = key
        self.value = value
        self.leaf = leaf


class _Bucket:
    """A Ring ORAM bucket: up to Z real blocks, S dummies, valid bits."""

    __slots__ = ("blocks", "dummies_remaining", "accesses_since_shuffle")

    def __init__(self, num_dummies: int):
        self.blocks: List[_Block] = []
        self.dummies_remaining = num_dummies
        self.accesses_since_shuffle = 0


class RingOram:
    """A Ring ORAM instance over integer-keyed fixed-size blocks.

    Args:
        capacity: maximum number of blocks.
        bucket_size: Z real slots per bucket.
        num_dummies: S dummy slots per bucket.
        eviction_rate: A — EvictPath every A accesses.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        num_dummies: int = 5,
        eviction_rate: int = 3,
        rng: Optional[random.Random] = None,
    ):
        require_positive(capacity, "capacity")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self.num_dummies = num_dummies
        self.eviction_rate = eviction_rate
        self._rng = rng if rng is not None else random.Random()

        self.num_leaves = next_pow2(max(2, capacity))
        self.height = self.num_leaves.bit_length() - 1
        self._buckets = [
            _Bucket(num_dummies) for _ in range(2 * self.num_leaves - 1)
        ]
        self._position: Dict[int, int] = {}
        self._stash: Dict[int, _Block] = {}
        self.accesses = 0
        self._eviction_counter = 0  # reverse-lexicographic leaf cursor
        self.evictions = 0
        self.early_reshuffles = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _leaf_bucket(self, leaf: int) -> int:
        return (self.num_leaves - 1) + leaf

    def _path(self, leaf: int) -> List[int]:
        path = []
        node = self._leaf_bucket(leaf)
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _path_at_depth(self, leaf: int, depth: int) -> int:
        node = self._leaf_bucket(leaf)
        for _ in range(self.height - depth):
            node = (node - 1) // 2
        return node

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def access(self, key: int, new_value: Optional[bytes] = None) -> Optional[bytes]:
        """ReadPath + conditional stash update + periodic EvictPath."""
        self.accesses += 1
        leaf = self._position.get(key)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
        new_leaf = self._rng.randrange(self.num_leaves)
        self._position[key] = new_leaf

        # ReadPath: one slot per bucket — the target block if the bucket
        # holds it, otherwise consume one dummy.
        found: Optional[_Block] = None
        for bucket_index in self._path(leaf):
            bucket = self._buckets[bucket_index]
            bucket.accesses_since_shuffle += 1
            target = None
            for block in bucket.blocks:
                if block.key == key:
                    target = block
                    break
            if target is not None:
                bucket.blocks.remove(target)
                self._stash[target.key] = target
                found = target
            else:
                bucket.dummies_remaining -= 1
            if (
                bucket.dummies_remaining <= 0
                or bucket.accesses_since_shuffle >= self.num_dummies
            ):
                self._early_reshuffle(bucket_index)

        block = self._stash.get(key) if found is None else found
        result = block.value if block is not None else None

        if new_value is not None:
            if block is None:
                block = _Block(key, new_value, new_leaf)
                self._stash[key] = block
            else:
                block.value = new_value
        if block is not None:
            block.leaf = new_leaf

        if self.accesses % self.eviction_rate == 0:
            self._evict_path()
        return result

    def _early_reshuffle(self, bucket_index: int) -> None:
        """Re-provision a bucket's dummies (reads + rewrites the bucket)."""
        bucket = self._buckets[bucket_index]
        bucket.dummies_remaining = self.num_dummies
        bucket.accesses_since_shuffle = 0
        self.early_reshuffles += 1

    def _evict_path(self) -> None:
        """EvictPath along the next reverse-lexicographic leaf."""
        leaf = self._reverse_lexicographic_leaf(self._eviction_counter)
        self._eviction_counter += 1
        self.evictions += 1

        # Pull every real block on the path into the stash.
        for bucket_index in self._path(leaf):
            bucket = self._buckets[bucket_index]
            for block in bucket.blocks:
                self._stash[block.key] = block
            bucket.blocks = []
            bucket.dummies_remaining = self.num_dummies
            bucket.accesses_since_shuffle = 0

        # Greedy write-back, deepest bucket first.
        for depth in range(self.height, -1, -1):
            bucket_index = self._path_at_depth(leaf, depth)
            bucket = self._buckets[bucket_index]
            for key in list(self._stash):
                if len(bucket.blocks) >= self.bucket_size:
                    break
                block = self._stash[key]
                if self._path_at_depth(block.leaf, depth) == bucket_index:
                    bucket.blocks.append(block)
                    del self._stash[key]

    def _reverse_lexicographic_leaf(self, counter: int) -> int:
        """Bit-reversed eviction order spreads evictions across the tree."""
        bits = self.height
        value = counter % self.num_leaves
        reversed_value = 0
        for _ in range(bits):
            reversed_value = (reversed_value << 1) | (value & 1)
            value >>= 1
        return reversed_value

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one block (one slot per bucket on the path)."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one block; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the tree's initial contents."""
        for key, value in objects.items():
            self.write(key, value)

    @property
    def stash_size(self) -> int:
        """Current stash occupancy (bounded w.h.p.)."""
        return len(self._stash)
