"""Baseline systems from the paper's evaluation (Table 8, §8.1).

* :mod:`repro.baselines.pathoram` — Path ORAM (Stefanov et al.), the
  tree-based ORAM underlying TaoStore and Oblix's DORAM.
* :mod:`repro.baselines.ringoram` — Ring ORAM (Ren et al.), the ORAM
  Obladi parallelizes.
* :mod:`repro.baselines.obladi` — Obladi-lite: a trusted proxy batching
  requests over Ring ORAM with deduplication and delayed visibility.
* :mod:`repro.baselines.oblix` — Oblix-lite: a sequential, enclave-hosted
  doubly-oblivious map with a recursively stored position map.
* :mod:`repro.baselines.plaintext` — a Redis-like sharded plaintext store
  (the insecure performance ceiling).

Each executes its real algorithm (correctness-tested); the performance
comparisons in the figure benchmarks use the calibrated cost models in
:mod:`repro.sim.costmodel`.
"""

from repro.baselines.pathoram import PathOram
from repro.baselines.ringoram import RingOram
from repro.baselines.obladi import ObladiProxy
from repro.baselines.oblix import OblixMap, OblixSubOram
from repro.baselines.plaintext import PlaintextStore
from repro.baselines.sqrtoram import SqrtOram

__all__ = [
    "ObladiProxy",
    "OblixMap",
    "OblixSubOram",
    "PathOram",
    "PlaintextStore",
    "RingOram",
    "SqrtOram",
]

from repro.baselines.taostore import TaoStoreProxy  # noqa: E402

__all__.append("TaoStoreProxy")

from repro.baselines.pancake import PancakeProxy  # noqa: E402

__all__.append("PancakeProxy")

from repro.baselines.prooram import ProOram  # noqa: E402

__all__.append("ProOram")

from repro.baselines.querylog import QueryLogOram  # noqa: E402

__all__.append("QueryLogOram")

from repro.baselines.circuitoram import CircuitOram  # noqa: E402

__all__.append("CircuitOram")
