"""Oblix-lite (Mishra et al., S&P 2018): sequential enclave DORAM.

Oblix runs a doubly-oblivious map inside an enclave: both the server-side
structure *and* the in-enclave client data structures are oblivious.  Its
position map is stored recursively in smaller ORAMs until the innermost
map fits in protected memory (§VI.A of Oblix; the Snoopy evaluation
simulates this recursion, §8.1).  Requests are strictly sequential —
Oblix optimizes latency, not throughput — which is why a single Oblix
machine tops out near 1.1K requests/second in Fig. 9a.

``OblixMap`` reproduces the structure: a data Path ORAM whose position
map lookups go through a chain of recursive Path ORAMs, each level
packing ``pack_factor`` positions per block.  ``recursion_depth`` counts
the ORAM levels an access touches — the quantity behind the Fig. 10
throughput step when sharding drops a recursion level.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.pathoram import PathOram
from repro.errors import NotInitializedError
from repro.utils.validation import require_positive

# Below this many entries a position map fits in enclave memory directly.
DIRECT_MAP_THRESHOLD = 1024


class OblixMap:
    """A recursively position-mapped, sequential oblivious map.

    Args:
        capacity: number of objects.
        pack_factor: position-map entries packed per recursion block.
        direct_threshold: size at which the recursion bottoms out.
    """

    def __init__(
        self,
        capacity: int,
        pack_factor: int = 16,
        direct_threshold: int = DIRECT_MAP_THRESHOLD,
        rng: Optional[random.Random] = None,
    ):
        require_positive(capacity, "capacity")
        require_positive(pack_factor, "pack_factor")
        self.capacity = capacity
        self.pack_factor = pack_factor
        self._rng = rng if rng is not None else random.Random()

        self.data_oram = PathOram(capacity, rng=self._rng)
        # Build the recursion: each level stores the previous level's
        # position map, pack_factor entries per block, until small enough.
        self.recursive_orams: List[PathOram] = []
        level_size = capacity
        while level_size > direct_threshold:
            level_size = (level_size + pack_factor - 1) // pack_factor
            self.recursive_orams.append(PathOram(max(1, level_size), rng=self._rng))
        self.accesses = 0

    @property
    def recursion_depth(self) -> int:
        """ORAM levels per access: data ORAM + recursive position maps."""
        return 1 + len(self.recursive_orams)

    # ------------------------------------------------------------------
    # Access path: walk the recursion, then the data ORAM.
    # ------------------------------------------------------------------
    def _touch_position_maps(self, key: int) -> None:
        """Perform the recursive position-map lookups for ``key``.

        Functionally the PathOram class resolves its own positions; the
        recursion here executes the *accesses* those lookups would incur
        (each level reads and rewrites one block), so costs, traces, and
        sequential latency match the recursive design.
        """
        block_index = key
        for level in self.recursive_orams:
            block_index //= self.pack_factor
            marker = block_index.to_bytes(8, "big", signed=False)
            level.access(block_index % max(1, level.capacity), marker)

    def read(self, key: int) -> Optional[bytes]:
        """Read one object (a full sequential recursive access)."""
        self.accesses += 1
        self._touch_position_maps(key)
        return self.data_oram.read(key)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object; returns the prior value."""
        self.accesses += 1
        self._touch_position_maps(key)
        return self.data_oram.write(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the map's initial contents."""
        for key, value in objects.items():
            self.data_oram.write(key, value)

    def batch_access(self, batch) -> list:
        """Serve a Snoopy batch one request at a time (no batching gains)."""
        from repro.types import OpType

        for entry in batch:
            if entry.key < 0:
                # Dummy request: a full (real-cost) access to a random slot.
                self._touch_position_maps(0)
                self.data_oram.read(self._rng.randrange(self.capacity))
                continue
            if entry.op is OpType.WRITE and entry.value is not None:
                entry.value = self.write(entry.key, entry.value)
            else:
                entry.value = self.read(entry.key)
        return list(batch)


class OblixSubOram:
    """Oblix as a pluggable Snoopy subORAM (Fig. 10's hybrid).

    Adapter for :class:`repro.core.snoopy.Snoopy`'s ``suboram_factory``:
    capacity is fixed lazily at ``initialize`` time, and batches are
    served request-by-request (no batch amortization — exactly why the
    native linear-scan subORAM wins, §8.2).
    """

    def __init__(self, suboram_id: int, rng: Optional[random.Random] = None):
        self.suboram_id = suboram_id
        self._rng = rng if rng is not None else random.Random()
        self._map: Optional[OblixMap] = None
        self._count = 0

    @property
    def num_objects(self) -> int:
        """Number of objects in this partition."""
        return self._count

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Size the recursive ORAMs for this partition and load it."""
        capacity = max(1, len(objects))
        self._map = OblixMap(capacity, rng=self._rng)
        # OblixMap keys by position within the partition for tree sizing.
        self._key_to_slot = {key: i for i, key in enumerate(sorted(objects))}
        for key, value in objects.items():
            self._map.data_oram.write(self._key_to_slot[key], value)
        self._count = len(objects)

    def batch_access(self, batch) -> list:
        """Serve a Snoopy batch request-by-request (no amortization)."""
        from repro.types import OpType

        if self._map is None:
            raise NotInitializedError("OblixSubOram not initialized")
        for entry in batch:
            slot = self._key_to_slot.get(entry.key)
            if slot is None:
                # Dummy or unknown key: a full-cost access to hide it.
                self._map._touch_position_maps(0)
                self._map.data_oram.read(
                    self._rng.randrange(max(1, self._map.capacity))
                )
                entry.value = None if not entry.is_dummy else entry.value
                continue
            if entry.op is OpType.WRITE and entry.value is not None and entry.permitted:
                entry.value = self._map.write(slot, entry.value)
            else:
                entry.value = self._map.read(slot)
        return list(batch)
