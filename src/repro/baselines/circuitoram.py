"""Circuit ORAM (Wang, Chan, Shi — CCS 2015), the ORAM inside MOSE (§10).

§10: "MOSE runs CircuitORAM inside a hardware enclave and distributes the
work for a single request across multiple cores."  Circuit ORAM is the
tree ORAM whose eviction runs in a *single pass* over the path with O(1)
blocks of client state — which is what makes it circuit-friendly and a
natural fit for enclaves whose private memory is tiny.

This implementation keeps the protocol's structure:

* accesses read one path and remap, like Path ORAM, but the fetched block
  goes to the *stash*, never straight back to the path;
* after every access, two deterministic reverse-lexicographic evictions
  run; each eviction makes one metadata scan to plan (the deepest-target
  assignment) and one pass down the path carrying at most one block in
  hand — the signature single-pass eviction.

The planning pass here mirrors the paper's 1-pass greedy: for each level,
the block currently held can drop into a bucket if it has space and the
block's leaf path passes through it; the deepest stash/path block that
can go deeper is picked up.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.utils.bits import next_pow2
from repro.utils.validation import require_positive


class _Block:
    __slots__ = ("key", "value", "leaf")

    def __init__(self, key: int, value: bytes, leaf: int):
        self.key = key
        self.value = value
        self.leaf = leaf


class CircuitOram:
    """A Circuit ORAM instance over integer-keyed fixed-size blocks.

    Args:
        capacity: maximum number of blocks.
        bucket_size: Z slots per bucket (2 suffices for Circuit ORAM; we
            default to 3 for stash headroom at small sizes).
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 3,
        rng: Optional[random.Random] = None,
    ):
        require_positive(capacity, "capacity")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self._rng = rng if rng is not None else random.Random()

        self.num_leaves = next_pow2(max(2, capacity))
        self.height = self.num_leaves.bit_length() - 1
        self._buckets: List[List[_Block]] = [
            [] for _ in range(2 * self.num_leaves - 1)
        ]
        self._position: Dict[int, int] = {}
        self._stash: List[_Block] = []
        self.accesses = 0
        self.evictions = 0
        self._eviction_counter = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _leaf_bucket(self, leaf: int) -> int:
        return (self.num_leaves - 1) + leaf

    def _path(self, leaf: int) -> List[int]:
        path = []
        node = self._leaf_bucket(leaf)
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _path_at_depth(self, leaf: int, depth: int) -> int:
        node = self._leaf_bucket(leaf)
        for _ in range(self.height - depth):
            node = (node - 1) // 2
        return node

    def _deepest_legal_depth(self, block_leaf: int, eviction_leaf: int) -> int:
        """Deepest level where the two paths still coincide."""
        depth = 0
        for level in range(self.height + 1):
            if self._path_at_depth(block_leaf, level) == self._path_at_depth(
                eviction_leaf, level
            ):
                depth = level
            else:
                break
        return depth

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------
    def access(self, key: int, new_value: Optional[bytes] = None) -> Optional[bytes]:
        """Read the path into hand, remap, stash; then evict twice."""
        self.accesses += 1
        leaf = self._position.get(key)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
        new_leaf = self._rng.randrange(self.num_leaves)
        self._position[key] = new_leaf

        # Fetch: remove the block from the path (or stash) if present.
        block: Optional[_Block] = None
        for bucket_index in self._path(leaf):
            bucket = self._buckets[bucket_index]
            for candidate in bucket:
                if candidate.key == key:
                    block = candidate
                    bucket.remove(candidate)
                    break
            if block is not None:
                break
        if block is None:
            for candidate in self._stash:
                if candidate.key == key:
                    block = candidate
                    self._stash.remove(candidate)
                    break

        result = block.value if block is not None else None
        if new_value is not None:
            if block is None:
                block = _Block(key, new_value, new_leaf)
            else:
                block.value = new_value
        if block is not None:
            block.leaf = new_leaf
            self._stash.append(block)

        # Two deterministic evictions per access (the Circuit ORAM rate).
        for _ in range(2):
            self._evict(self._reverse_lexicographic_leaf(self._eviction_counter))
            self._eviction_counter += 1
        return result

    def _reverse_lexicographic_leaf(self, counter: int) -> int:
        bits = self.height
        value = counter % self.num_leaves
        reversed_value = 0
        for _ in range(bits):
            reversed_value = (reversed_value << 1) | (value & 1)
            value >>= 1
        return reversed_value

    def _evict(self, eviction_leaf: int) -> None:
        """Single-pass eviction: walk root->leaf holding <= 1 block."""
        self.evictions += 1
        path = self._path(eviction_leaf)
        held: Optional[_Block] = None

        for depth, bucket_index in enumerate(path):
            bucket = self._buckets[bucket_index]

            # Drop the held block here if this is as deep as it may go or
            # the bucket has room and going deeper isn't possible later.
            if held is not None and len(bucket) < self.bucket_size:
                deepest = self._deepest_legal_depth(held.leaf, eviction_leaf)
                if deepest == depth:
                    bucket.append(held)
                    held = None

            # Pick up the bucket/stash block that can go deepest below
            # this level (only if our hand is free).
            if held is None:
                candidates = list(bucket)
                if depth == 0:
                    candidates += list(self._stash)
                best = None
                best_depth = depth
                for candidate in candidates:
                    candidate_depth = self._deepest_legal_depth(
                        candidate.leaf, eviction_leaf
                    )
                    if candidate_depth > best_depth:
                        best = candidate
                        best_depth = candidate_depth
                if best is not None:
                    held = best
                    if best in bucket:
                        bucket.remove(best)
                    else:
                        self._stash.remove(best)

        # Anything still in hand returns to the stash.
        if held is not None:
            self._stash.append(held)

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one block (one path fetch + two evictions)."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one block; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load blocks one access at a time."""
        for key, value in objects.items():
            self.write(key, value)

    @property
    def stash_size(self) -> int:
        """Current stash occupancy — O(1) blocks w.h.p. for Circuit ORAM."""
        return len(self._stash)
