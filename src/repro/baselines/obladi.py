"""Obladi-lite (Crooks et al., OSDI 2018): trusted-proxy batched ORAM.

Obladi's core idea: a trusted proxy collects requests into fixed-size
batches, deduplicates them, executes them against a (parallelized) Ring
ORAM, and delays visibility of writes to the end of the batch.  The proxy
is the scalability bottleneck Snoopy's evaluation highlights: every
request serializes through it, so throughput cannot scale past one proxy
machine (Table 8, Fig. 9a).

This module reproduces the algorithmic behaviour (batching, dedup,
last-write-wins, delayed visibility, padding to the fixed batch size with
dummy accesses) on top of :class:`repro.baselines.ringoram.RingOram`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.ringoram import RingOram
from repro.types import OpType, Request, Response
from repro.utils.validation import require_positive

DEFAULT_BATCH_SIZE = 500  # the paper's Obladi configuration (§8.1)


class ObladiProxy:
    """A trusted proxy batching requests over a single Ring ORAM.

    Args:
        capacity: object count.
        batch_size: fixed batch size (500 in the paper's runs); batches
            are padded to this size with dummy accesses so the storage
            server cannot learn the real load.
    """

    def __init__(
        self,
        capacity: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        rng: Optional[random.Random] = None,
    ):
        require_positive(batch_size, "batch_size")
        self._rng = rng if rng is not None else random.Random()
        self.oram = RingOram(capacity, rng=self._rng)
        self.batch_size = batch_size
        self._queue: List[Request] = []
        self.batches_executed = 0
        self.dummy_accesses = 0
        self._known_keys: List[int] = []

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the store's initial contents into the Ring ORAM."""
        self.oram.initialize(objects)
        self._known_keys = sorted(objects)

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for the next batch."""
        self._queue.append(request)

    def execute_batch(self) -> List[Response]:
        """Run one fixed-size batch; delayed-visibility semantics.

        Reads observe the state as of batch start; writes apply at batch
        end (last write wins).  Every batch performs exactly
        ``batch_size`` ORAM accesses — real deduplicated requests first,
        dummy accesses for the rest.
        """
        requests = self._queue[: self.batch_size]
        self._queue = self._queue[self.batch_size :]
        self.batches_executed += 1

        # Deduplicate: one ORAM access per distinct key; last write wins.
        reads_first: Dict[int, bytes] = {}
        winning_write: Dict[int, bytes] = {}
        order: List[int] = []
        for request in requests:
            if request.key not in winning_write and request.key not in reads_first:
                order.append(request.key)
            if request.op is OpType.WRITE:
                winning_write[request.key] = request.value
            reads_first.setdefault(request.key, b"")

        # Phase 1: read every distinct key (captures batch-start values).
        prior: Dict[int, Optional[bytes]] = {}
        for key in order:
            prior[key] = self.oram.read(key)

        # Pad to the fixed batch size with dummy accesses.
        for _ in range(self.batch_size - len(order)):
            self.dummy_accesses += 1
            dummy_key = (
                self._rng.choice(self._known_keys) if self._known_keys else 0
            )
            self.oram.read(dummy_key)

        # Phase 2 (batch end): apply winning writes.
        for key, value in winning_write.items():
            self.oram.write(key, value)

        return [
            Response(
                key=request.key,
                value=prior.get(request.key),
                client_id=request.client_id,
                seq=request.seq,
            )
            for request in requests
        ]

    def batch(self, requests: List[Request]) -> List[Response]:
        """Convenience: submit then execute enough batches to drain."""
        for request in requests:
            self.submit(request)
        responses: List[Response] = []
        while self._queue:
            responses.extend(self.execute_batch())
        return responses
