"""TaoStore-lite (Sahin et al., S&P 2016): asynchronous trusted-proxy ORAM.

TaoStore serves concurrent clients through a trusted proxy over Path
ORAM *without batching*: requests are processed as they arrive; requests
for overlapping paths are coalesced through an in-proxy subtree cache so
a path is never fetched twice concurrently; write-back happens
asynchronously.  The proxy sequencer is the scalability bottleneck (§10:
"each requires some centralized component that eventually bottlenecks
scalability").

This reproduction keeps the request-level structure — a sequencer, a
fresh-subtree cache keyed by path, coalesced fetches, deferred
write-back every ``flush_every`` completions — at the granularity our
comparisons need, on top of :class:`repro.baselines.pathoram.PathOram`
internals.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.pathoram import PathOram
from repro.types import OpType, Request, Response
from repro.utils.validation import require_positive


class TaoStoreProxy:
    """A TaoStore-style proxy over one Path ORAM tree.

    Requests submitted between flushes see the proxy's fresh state
    (sequencer order), while the server-side tree is updated lazily —
    TaoStore's "asynchronous" write-back.  ``paths_fetched`` counts
    server round trips; coalescing makes it less than the request count
    under concurrency.
    """

    def __init__(
        self,
        capacity: int,
        flush_every: int = 8,
        rng: Optional[random.Random] = None,
    ):
        require_positive(flush_every, "flush_every")
        self._rng = rng if rng is not None else random.Random()
        self.oram = PathOram(capacity, rng=self._rng)
        self.flush_every = flush_every
        # Proxy state: fresh values not yet written back, and the set of
        # paths currently held in the subtree cache.
        self._fresh: Dict[int, bytes] = {}
        self._cached_paths: set = set()
        self.sequenced = 0
        self.paths_fetched = 0
        self._since_flush = 0

    # ------------------------------------------------------------------
    # Request processing (sequential sequencer — the bottleneck)
    # ------------------------------------------------------------------
    def access(self, key: int, new_value: Optional[bytes] = None) -> Optional[bytes]:
        """Sequence one request; fetches a path unless coalesced."""
        self.sequenced += 1

        if key in self._fresh:
            # Coalesced: answered from the proxy's subtree cache, no
            # server round trip.
            result = self._fresh[key]
        else:
            leaf = self.oram._position.get(key)
            path_id = leaf if leaf is not None else ("miss", key)
            if path_id not in self._cached_paths:
                self.paths_fetched += 1
                self._cached_paths.add(path_id)
            # Fetch through the ORAM (moves the block, remaps the leaf)
            # and keep the block cached until the next flush.
            result = self.oram.read(key)
            if result is not None:
                self._fresh[key] = result

        if new_value is not None:
            self._fresh[key] = new_value
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.flush()
        return result

    def flush(self) -> None:
        """Asynchronous write-back: push fresh values into the tree."""
        for key, value in self._fresh.items():
            self.oram.write(key, value)
        self._fresh.clear()
        self._cached_paths.clear()
        self._since_flush = 0

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object through the sequencer."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object through the sequencer; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the tree's initial contents."""
        self.oram.initialize(objects)

    def batch(self, requests: List[Request]) -> List[Response]:
        """Serve requests in sequence (no batching — TaoStore semantics:
        each request sees all earlier requests' effects immediately)."""
        responses = []
        for request in requests:
            value = self.access(
                request.key,
                request.value if request.op is OpType.WRITE else None,
            )
            responses.append(
                Response(
                    key=request.key,
                    value=value,
                    client_id=request.client_id,
                    seq=request.seq,
                )
            )
        return responses
