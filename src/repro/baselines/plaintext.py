"""A Redis-like sharded plaintext key-value store (§8.1's Redis baseline).

The insecure performance ceiling: objects are sharded across nodes by a
plain hash, clients route directly to the owning shard, and the server
observes every access in the clear.  Used to quantify the overhead of
obliviousness (Snoopy is ~39x slower than Redis at 15 machines, §8.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.types import OpType, Request, Response
from repro.utils.validation import require_positive


class PlaintextStore:
    """A sharded in-memory KV store with visible access patterns.

    ``access_log`` records (shard, key, op) per request — exactly the
    leakage oblivious storage exists to remove; the comparison tests use
    it to demonstrate the insecurity of "attempt #1" sharding (§3).
    """

    def __init__(self, num_shards: int = 1):
        require_positive(num_shards, "num_shards")
        self.num_shards = num_shards
        self._shards: List[Dict[int, bytes]] = [{} for _ in range(num_shards)]
        self.access_log: List[tuple] = []

    def _shard_of(self, key: int) -> int:
        return hash(key) % self.num_shards

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load the shards."""
        for key, value in objects.items():
            self._shards[self._shard_of(key)][key] = value

    def read(self, key: int) -> Optional[bytes]:
        """Read one object; the access is logged in the clear."""
        shard = self._shard_of(key)
        self.access_log.append((shard, key, "read"))
        return self._shards[shard].get(key)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object; returns the prior value; logged in the clear."""
        shard = self._shard_of(key)
        self.access_log.append((shard, key, "write"))
        prior = self._shards[shard].get(key)
        self._shards[shard][key] = value
        return prior

    def batch(self, requests: List[Request]) -> List[Response]:
        """Pipelined batch execution (memtier-style)."""
        responses = []
        for request in requests:
            if request.op is OpType.WRITE:
                value = self.write(request.key, request.value)
            else:
                value = self.read(request.key)
            responses.append(
                Response(
                    key=request.key,
                    value=value,
                    client_id=request.client_id,
                    seq=request.seq,
                )
            )
        return responses
