"""Path ORAM (Stefanov et al., CCS 2013).

The canonical tree-based ORAM: blocks live in a binary tree of
``Z``-slot buckets; a position map assigns each block a leaf; an access
reads the whole root-to-leaf path into a client-side stash, remaps the
block to a fresh leaf, and greedily writes the path back.  The paper's
baselines Oblix and TaoStore, and Snoopy's "attempt #2" strawman, all
build on this structure — and its root bucket is the scalability
bottleneck Snoopy removes (§1).

This is a complete functional implementation (stash, greedy write-back,
recursion-free position map); :class:`repro.baselines.oblix.OblixMap`
layers recursive position maps on top.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.utils.bits import next_pow2
from repro.utils.validation import require_positive

DEFAULT_BUCKET_SIZE = 4


class _Block:
    __slots__ = ("key", "value", "leaf")

    def __init__(self, key: int, value: bytes, leaf: int):
        self.key = key
        self.value = value
        self.leaf = leaf


class PathOram:
    """A Path ORAM instance over integer-keyed fixed-size blocks.

    Args:
        capacity: maximum number of blocks.
        bucket_size: Z (4 is the standard choice).
        rng: randomness source (tests pass a seeded ``random.Random``).
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        rng: Optional[random.Random] = None,
    ):
        require_positive(capacity, "capacity")
        require_positive(bucket_size, "bucket_size")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self._rng = rng if rng is not None else random.Random()

        self.num_leaves = next_pow2(max(2, capacity))
        self.height = self.num_leaves.bit_length() - 1  # root depth 0
        num_buckets = 2 * self.num_leaves - 1
        # Bucket b's children are 2b+1, 2b+2; leaves occupy the last level.
        self._tree: List[List[_Block]] = [[] for _ in range(num_buckets)]
        self._position: Dict[int, int] = {}
        self._stash: Dict[int, _Block] = {}
        self.accesses = 0

    # ------------------------------------------------------------------
    # Tree geometry
    # ------------------------------------------------------------------
    def _leaf_bucket(self, leaf: int) -> int:
        return (self.num_leaves - 1) + leaf

    def _path(self, leaf: int) -> List[int]:
        """Bucket indices from root to ``leaf``'s bucket."""
        path = []
        node = self._leaf_bucket(leaf)
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _path_at_depth(self, leaf: int, depth: int) -> int:
        """The bucket on ``leaf``'s path at the given depth."""
        node = self._leaf_bucket(leaf)
        for _ in range(self.height - depth):
            node = (node - 1) // 2
        return node

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------
    def access(
        self, key: int, new_value: Optional[bytes] = None
    ) -> Optional[bytes]:
        """One ORAM access: read (new_value None) or write.

        Returns the block's value prior to the access, or ``None`` if the
        key has never been written.
        """
        self.accesses += 1
        leaf = self._position.get(key)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
        new_leaf = self._rng.randrange(self.num_leaves)
        self._position[key] = new_leaf

        # Read the whole path into the stash.
        path = self._path(leaf)
        for bucket_index in path:
            bucket = self._tree[bucket_index]
            for block in bucket:
                self._stash[block.key] = block
            self._tree[bucket_index] = []

        block = self._stash.get(key)
        result = block.value if block is not None else None

        if new_value is not None:
            if block is None:
                block = _Block(key, new_value, new_leaf)
                self._stash[key] = block
            else:
                block.value = new_value
        if block is not None:
            block.leaf = new_leaf

        self._write_back(leaf)
        return result

    def _write_back(self, leaf: int) -> None:
        """Greedy write-back: deepest intersecting bucket first."""
        for depth in range(self.height, -1, -1):
            bucket_index = self._path_at_depth(leaf, depth)
            bucket: List[_Block] = []
            for key in list(self._stash):
                if len(bucket) >= self.bucket_size:
                    break
                block = self._stash[key]
                if self._path_at_depth(block.leaf, depth) == bucket_index:
                    bucket.append(block)
                    del self._stash[key]
            self._tree[bucket_index] = bucket

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one block (a full path access)."""
        return self.access(key, None)

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one block; returns the prior value."""
        return self.access(key, value)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Bulk-load objects (standard one-by-one insertion)."""
        for key, value in objects.items():
            self.write(key, value)

    @property
    def stash_size(self) -> int:
        """Current stash occupancy — bounded w.h.p. for Z >= 4."""
        return len(self._stash)

    def path_length_blocks(self) -> int:
        """Blocks transferred per access: Z * (height + 1), both directions."""
        return self.bucket_size * (self.height + 1)
