"""Bridge from the kernels' :class:`KernelTrace` seam to telemetry.

The oblivious kernels already expose a level-granular schedule recorder
(:class:`repro.oblivious.kernels.KernelTrace`): every sort level,
compaction layer, and scan slot calls ``trace.record(...)`` with public
quantities.  :class:`TimedKernelTrace` subclasses it to stamp each event
with ``time.monotonic()`` — the schedule seen by obliviousness tests is
untouched (``events`` stays the same list of tuples), the timestamps
ride alongside.

:func:`flush_kernel_trace` then turns a timed trace into registry
metrics:

* ``kernel_ops_total{op=...}`` — one counter increment per event kind
  (``sort`` / ``sort_level`` / ``compact`` / ``compact_level`` /
  ``scan`` / ``scan_slot``).  Pure schedule counts, hence public.
* ``kernel_level_seconds{op=sort|compact}`` — the inter-event delta
  ending at each ``*_level`` event, observed as one histogram sample.
  Only level events get duration samples (per-slot scan samples would
  make histogram memory proportional to N·B for no analytical value).

Caveat: the python reference kernel records all sort levels *upfront*
(the schedule is computed before execution), so its level deltas are
near zero and meaningless; per-level timings are meaningful on the
numpy kernel, which records each level as it executes.  The counters
are meaningful on both.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.oblivious.kernels import KernelTrace

from .registry import MetricsRegistry

#: Event kinds whose inter-event delta is worth a histogram sample.
_LEVEL_EVENTS = {"sort_level": "sort", "compact_level": "compact"}


class TimedKernelTrace(KernelTrace):
    """A :class:`KernelTrace` that also timestamps every event.

    ``events`` behaves exactly as in the base class (tuples of public
    quantities, order-comparable against an untimed trace);
    ``timestamps[i]`` is the ``time.monotonic()`` instant event ``i``
    was recorded.
    """

    def __init__(self):
        super().__init__()
        self.timestamps: List[float] = []

    def record(self, *event) -> None:
        """Append the event and stamp the current monotonic time."""
        super().record(*event)
        self.timestamps.append(time.monotonic())


def flush_kernel_trace(
    registry: MetricsRegistry, trace: TimedKernelTrace, kernel: str
) -> None:
    """Fold one finished timed trace into ``registry``.

    ``kernel`` labels the series (``python`` / ``numpy``) so the two
    paths stay comparable side by side.  Safe to call with an empty
    trace; plain untimed traces (no ``timestamps``) contribute counters
    only.
    """
    timestamps: List[float] = getattr(trace, "timestamps", [])
    prev_ts = timestamps[0] if timestamps else 0.0
    for index, event in enumerate(trace.events):
        op = str(event[0])
        registry.counter("kernel_ops_total", kernel=kernel, op=op).inc()
        if index < len(timestamps):
            ts = timestamps[index]
            phase = _LEVEL_EVENTS.get(op)
            if phase is not None:
                registry.histogram(
                    "kernel_level_seconds", kernel=kernel, op=phase
                ).observe(max(0.0, ts - prev_ts))
            prev_ts = ts


def timed_trace_pair() -> Tuple[TimedKernelTrace, TimedKernelTrace]:
    """Convenience: two fresh timed traces (e.g. sort + compact legs)."""
    return TimedKernelTrace(), TimedKernelTrace()
