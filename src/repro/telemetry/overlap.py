"""Per-stage overlap and occupancy metrics for the pipelined scheduler.

The §6 performance model only holds if epoch stages genuinely overlap:
the load balancers must be building batch ``e+1`` *while* the subORAMs
execute batch ``e``.  This module makes that claim measurable.

:class:`StageIntervalRecorder` collects ``(stage, epoch, start, end)``
wall-clock intervals from the pipeline's stage threads (thread-safe; the
pipeline records one interval per stage per epoch).  Two pure functions
turn the interval log into the numbers the benchmark and CI gate check:

* :func:`overlap_seconds` — total wall-clock during which a ``stage_a``
  interval of a *later* epoch ran concurrently with a ``stage_b``
  interval of an earlier epoch (e.g. build of ``e+1`` overlapping
  execute of ``e``).  Strictly positive overlap is the witness that the
  pipeline is more than sequential stages behind a lock.
* :func:`occupancy_table` — per-stage busy seconds, wall-clock span, and
  occupancy fraction (busy/span); the stage-occupancy table
  ``BENCH_pipeline.json`` publishes.

Everything here is public information: stage timings are wall-clock
facts the host already observes (SECURITY.md "Telemetry is public
information"); no interval depends on request contents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry import resolve_telemetry


@dataclass(frozen=True)
class StageInterval:
    """One stage execution: ``stage`` of epoch ``epoch`` ran [start, end).

    Attributes:
        stage: pipeline stage name (``"build"``, ``"execute"``,
            ``"match"``).
        epoch: the trusted-counter value of the epoch the stage served.
        start: ``time.monotonic()`` at stage start.
        end: ``time.monotonic()`` at stage end.
    """

    stage: str
    epoch: int
    start: float
    end: float

    @property
    def seconds(self) -> float:
        """The interval's duration in seconds."""
        return max(0.0, self.end - self.start)


class StageIntervalRecorder:
    """Thread-safe collector of :class:`StageInterval` rows.

    The pipeline's stage threads call :meth:`record` as each stage of
    each epoch finishes; analysis helpers read :attr:`intervals`.  When
    a telemetry handle is attached, each interval also feeds
    ``pipeline_stage_busy_seconds_total{stage=...}`` (a counter of busy
    seconds per stage) and ``pipeline_stage_seconds{stage=...}`` (a
    histogram of per-epoch stage durations).
    """

    def __init__(self, telemetry=None):
        self._lock = threading.Lock()
        self._intervals: List[StageInterval] = []
        self.telemetry = resolve_telemetry(telemetry)

    def record(
        self, stage: str, epoch: int, start: float, end: float
    ) -> StageInterval:
        """Append one stage interval; returns the stored row."""
        interval = StageInterval(stage=stage, epoch=epoch, start=start, end=end)
        with self._lock:
            self._intervals.append(interval)
        self.telemetry.counter(
            "pipeline_stage_busy_seconds_total", stage=stage
        ).inc(interval.seconds)
        self.telemetry.histogram(
            "pipeline_stage_seconds", stage=stage
        ).observe(interval.seconds)
        return interval

    @property
    def intervals(self) -> List[StageInterval]:
        """A snapshot of every recorded interval (record order)."""
        with self._lock:
            return list(self._intervals)


def overlap_seconds(
    intervals: Sequence[StageInterval],
    stage_a: str,
    stage_b: str,
    require_later_epoch: bool = True,
) -> float:
    """Total seconds ``stage_a`` intervals overlapped ``stage_b`` ones.

    With ``require_later_epoch`` (the default) only pairs where the
    ``stage_a`` interval belongs to a *strictly later* epoch than the
    ``stage_b`` interval count — the §6 shape: build of ``e+1``
    concurrent with execute of ``e``.  Pass ``False`` to measure any
    cross-stage concurrency regardless of epoch order.
    """
    a_rows = [i for i in intervals if i.stage == stage_a]
    b_rows = [i for i in intervals if i.stage == stage_b]
    total = 0.0
    for a in a_rows:
        for b in b_rows:
            if require_later_epoch and a.epoch <= b.epoch:
                continue
            total += max(0.0, min(a.end, b.end) - max(a.start, b.start))
    return total


def occupancy_table(
    intervals: Sequence[StageInterval],
    stages: Optional[Sequence[str]] = None,
) -> List[Dict[str, float]]:
    """Per-stage busy time, span, and occupancy fraction.

    For each stage: ``busy_s`` is the sum of its interval durations,
    ``span_s`` the wall-clock from the earliest start to the latest end
    across *all* recorded intervals (the pipeline's makespan — using a
    common span makes occupancies comparable across stages), and
    ``occupancy`` is ``busy_s / span_s``.  Stages listed in ``stages``
    (default: every stage seen, in first-appearance order) each get one
    row; a stage with no intervals reports zeros.
    """
    if stages is None:
        seen: List[str] = []
        for interval in intervals:
            if interval.stage not in seen:
                seen.append(interval.stage)
        stages = seen
    if intervals:
        span_start = min(i.start for i in intervals)
        span_end = max(i.end for i in intervals)
        span = max(0.0, span_end - span_start)
    else:
        span = 0.0
    rows = []
    for stage in stages:
        busy = sum(i.seconds for i in intervals if i.stage == stage)
        rows.append({
            "stage": stage,
            "count": float(sum(1 for i in intervals if i.stage == stage)),
            "busy_s": busy,
            "span_s": span,
            "occupancy": busy / span if span > 0 else 0.0,
        })
    return rows
