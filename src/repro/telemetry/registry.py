"""The metrics registry: counters, gauges, and sample histograms.

Zero-dependency (stdlib only) and thread-safe: epoch stages running on a
thread-pool backend record into the same registry the driver uses.  A
metric is identified by its name plus a fixed label set, e.g.
``registry.histogram("snoopy_epoch_stage_seconds", stage="build")`` —
the Prometheus data model, so the text export
(:meth:`MetricsRegistry.prometheus_text`) is a straight serialization.

**Percentiles.**  :func:`nearest_rank_percentile` is the single
percentile implementation shared by :class:`Histogram` and the
simulator's :class:`~repro.sim.metrics.LatencyStats` (they previously
risked drifting apart; ``tests/test_telemetry_properties.py``
cross-checks both against a sorted-list oracle).

**Public values.**  Exported metric *values* fall in two classes (see
SECURITY.md):

* counters, gauges, and histogram observation **counts** are pure
  functions of the public configuration and batch shape — two workloads
  of the same shape produce identical values
  (``tests/test_telemetry_obliviousness.py`` asserts this);
* histogram **sums/quantiles** are wall-clock measurements.  Timing is
  already public information in the threat model (§2.1 allows arrival
  and response timing to leak); telemetry adds no data-dependent
  quantity on top.

:meth:`MetricsRegistry.public_snapshot` returns exactly the first class,
which is what the differential harness compares across configurations.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: A metric's identity: ``(name, (("label", "value"), ...))`` with the
#: label pairs sorted, so keyword order at the call site never matters.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def nearest_rank_percentile(ordered: List[float], p: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list.

    ``p`` is in ``[0, 100]``.  Returns ``ordered[ceil(p/100 * n) - 1]``
    clamped to the valid index range, and ``0.0`` for an empty list —
    the exact historical behaviour of ``LatencyStats.percentile``, now
    the single shared implementation.
    """
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(p / 100 * len(ordered)) - 1))
    return ordered[rank]


def _labels_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Normalize a label dict into the sorted, stringified key tuple."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (requests served, cache hits...).

    Thread-safe; float increments are allowed (e.g. accumulated backoff
    sleep seconds).  Merging counters adds their values, which is
    associative and commutative — the property that makes per-worker
    registries safe to aggregate in any order
    (``tests/test_telemetry_properties.py``).
    """

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1; must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current counter value."""
        return self._value

    def merge(self, other: "Counter") -> None:
        """Fold another counter's value into this one (addition)."""
        self.inc(other.value)


class Gauge:
    """A value that can go up and down (queue depth, live workers)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking).

        Atomic under the gauge lock, so concurrent observers of a
        high-water mark (e.g. peak open tickets) never regress it.
        """
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (last-writer-wins: takes other's value)."""
        self.set(other.value)


class Histogram:
    """A sample-keeping distribution with nearest-rank percentiles.

    Keeps every observation (these are per-stage timings in a
    reproduction, not an unbounded production firehose), so percentiles
    are exact — computed by the same :func:`nearest_rank_percentile` the
    simulator's latency stats use.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of recorded samples (a public, shape-determined value)."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Mean sample, 0.0 when empty."""
        samples = self._samples
        return math.fsum(samples) / len(samples) if samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over all samples (``p`` in [0, 100])."""
        return nearest_rank_percentile(sorted(self._samples), p)

    @property
    def p50(self) -> float:
        """Median sample."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile sample."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile sample."""
        return self.percentile(99)

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded samples, in observation order."""
        return list(self._samples)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        with self._lock:
            self._samples.extend(other.samples)


#: Quantiles serialized by the Prometheus text export.
_EXPORT_QUANTILES = (0.5, 0.95, 0.99)


class MetricsRegistry:
    """A process-local family of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create the metric for
    a ``(name, labels)`` identity; asking for an existing name with a
    different metric kind raises ``ValueError`` (one name, one kind, as
    in Prometheus).  Registries from worker processes can be folded
    together with :meth:`merge`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[MetricKey, object] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, object]):
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for (other_name, _), other in self._metrics.items():
                    if other_name == name and other.kind != cls.kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{other.kind}, cannot re-register as {cls.kind}"
                        )
                metric = cls(name, key[1])
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, cannot re-register as {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get_or_create(Histogram, name, labels)

    def metrics(self) -> List[object]:
        """Every registered metric, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str, **labels) -> Optional[object]:
        """The metric at ``(name, labels)``, or ``None`` if unregistered."""
        return self._metrics.get((name, _labels_key(labels)))

    def histograms(self, name: str) -> List[Histogram]:
        """Every histogram series registered under ``name``."""
        return [
            m for m in self.metrics()
            if isinstance(m, Histogram) and m.name == name
        ]

    # ------------------------------------------------------------------
    # Snapshots and exports
    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """Full dump (one dict per metric) for the JSON-lines sink."""
        rows = []
        for metric in self.metrics():
            row = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                row.update(
                    count=metric.count,
                    sum=metric.sum,
                    p50=metric.p50,
                    p95=metric.p95,
                    p99=metric.p99,
                )
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows

    @staticmethod
    def _timing_valued(name: str) -> bool:
        """Counters/gauges whose *value* is wall-clock time.

        ``*_seconds`` / ``*_seconds_total`` series (stage busy time,
        retry backoff) carry measured durations, not shape-determined
        counts — the byte-exact public export must omit them just like
        histogram sums and quantiles.
        """
        base = name[:-len("_total")] if name.endswith("_total") else name
        return base.endswith("_seconds")

    def public_snapshot(self) -> Dict[str, float]:
        """The shape-determined values only: counters, gauges, histogram
        counts — the quantities SECURITY.md declares to be pure functions
        of configuration and batch shape.  Wall-clock-valued series
        (``*_seconds``/``*_seconds_total``) are omitted.  Keys are
        rendered series names (``name{label="value",...}``)."""
        snap: Dict[str, float] = {}
        for metric in self.metrics():
            series = _render_series(metric.name, metric.labels)
            if isinstance(metric, Histogram):
                snap[series + "#count"] = metric.count
            elif not self._timing_valued(metric.name):
                snap[series] = metric.value
        return snap

    def prometheus_text(self, public_only: bool = False) -> str:
        """Serialize the registry in the Prometheus text exposition format.

        Histograms export as Prometheus *summaries* (quantile series plus
        ``_sum``/``_count``), matching the p50/p95/p99 the registry
        computes.  With ``public_only=True`` the wall-clock-valued lines
        (quantiles and sums) are omitted, leaving exactly the
        shape-determined series of :meth:`public_snapshot` — the export
        the obliviousness regression test compares byte-for-byte.
        """
        lines: List[str] = []
        typed = set()
        for metric in self.metrics():
            if (
                public_only
                and not isinstance(metric, Histogram)
                and self._timing_valued(metric.name)
            ):
                continue
            if metric.name not in typed:
                kind = "summary" if metric.kind == "histogram" else metric.kind
                lines.append(f"# TYPE {metric.name} {kind}")
                typed.add(metric.name)
            if isinstance(metric, Histogram):
                if not public_only:
                    for q in _EXPORT_QUANTILES:
                        q_labels = metric.labels + (("quantile", str(q)),)
                        lines.append(
                            f"{_render_series(metric.name, q_labels)} "
                            f"{metric.percentile(q * 100):.9f}"
                        )
                    lines.append(
                        f"{_render_series(metric.name + '_sum', metric.labels)} "
                        f"{metric.sum:.9f}"
                    )
                lines.append(
                    f"{_render_series(metric.name + '_count', metric.labels)} "
                    f"{metric.count}"
                )
            else:
                lines.append(
                    f"{_render_series(metric.name, metric.labels)} "
                    f"{_render_value(metric.value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, metric by metric.

        Counters add, histograms concatenate samples, gauges take the
        other's value; metrics missing here are created.  Counter/
        histogram merging is associative and order-insensitive up to
        sample order, so per-worker registries aggregate safely.
        """
        for metric in other.metrics():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                self.counter(metric.name, **labels).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, **labels).merge(metric)
            else:
                self.histogram(metric.name, **labels).merge(metric)


def _render_series(name: str, labels: Iterable[Tuple[str, str]]) -> str:
    """``name{k="v",...}`` (or bare ``name`` without labels)."""
    labels = tuple(labels)
    if not labels:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{rendered}}}"


def _render_value(value: float) -> str:
    """Integers without a trailing ``.0``; floats at full precision."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
