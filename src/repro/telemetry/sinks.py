"""Pluggable telemetry sinks.

A sink receives the finished state of a :class:`Telemetry` handle when
``flush()`` is called: the metrics registry and the tracer's span trees.
Three implementations ship:

* :class:`InMemorySink` — keeps the flushed snapshots on the object;
  what tests and the benchmarks use.
* :class:`JsonLinesSink` — appends one JSON object per line to a file
  (``kind: "metric"`` rows then ``kind: "span"`` rows per flush); the
  chaos-soak CI job uploads these as artifacts.
* :class:`PrometheusTextSink` — writes the registry's Prometheus text
  exposition to a file, whole-file-replace per flush (the newest flush
  wins, matching scrape semantics).  Behind the CLI's ``--metrics-out``.

Sinks are deliberately dumb — all aggregation lives in the registry, so
a sink never sees partial state.
"""

from __future__ import annotations

import json
from typing import List

from .registry import MetricsRegistry
from .spans import Span


class InMemorySink:
    """Accumulates flushed snapshots in memory for inspection."""

    def __init__(self) -> None:
        self.metric_rows: List[dict] = []
        self.span_trees: List[dict] = []
        self.flush_count = 0

    def emit(self, registry: MetricsRegistry, roots: List[Span]) -> None:
        """Record the registry snapshot and span trees of one flush."""
        self.flush_count += 1
        self.metric_rows = registry.snapshot()
        self.span_trees = [root.to_dict() for root in roots]


class JsonLinesSink:
    """Appends metrics and spans as JSON-lines records to ``path``."""

    def __init__(self, path: str):
        self.path = path

    def emit(self, registry: MetricsRegistry, roots: List[Span]) -> None:
        """Append one ``metric`` row per metric and one ``span`` row per
        trace tree to the file."""
        with open(self.path, "a", encoding="utf-8") as fh:
            for row in registry.snapshot():
                fh.write(json.dumps({"kind": "metric", **row}) + "\n")
            for root in roots:
                fh.write(
                    json.dumps({"kind": "span", **root.to_dict()}) + "\n"
                )


class PrometheusTextSink:
    """Writes the Prometheus text exposition of the registry to ``path``."""

    def __init__(self, path: str):
        self.path = path

    def emit(self, registry: MetricsRegistry, roots: List[Span]) -> None:
        """Replace ``path`` with the current exposition (spans are not
        part of the Prometheus data model and are ignored)."""
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(registry.prometheus_text())
