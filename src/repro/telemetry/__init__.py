"""Telemetry: metrics, trace spans, and profiling hooks for the pipeline.

The planner's equations (1)-(3) need *measured* per-stage costs, and the
differential tests need a machine-checkable statement of "behaviour
identical across configurations".  This package provides both with zero
dependencies beyond the stdlib.

Quick start::

    from repro.telemetry import Telemetry
    from repro.telemetry.sinks import PrometheusTextSink

    telemetry = Telemetry(sinks=[PrometheusTextSink("metrics.prom")])
    config = SnoopyConfig(..., telemetry=telemetry)
    snoopy = Snoopy(config, keychain)
    ...
    snoopy.run_epoch()
    telemetry.flush()          # push registry + spans to every sink

    stage = telemetry.registry.histograms("snoopy_epoch_stage_seconds")
    for hist in stage:
        print(dict(hist.labels)["stage"], hist.count, hist.p50)

Three layers:

* **Metrics registry** (``repro.telemetry.registry``) — labelled
  counters, gauges, and sample-keeping histograms with exact
  nearest-rank p50/p95/p99 (the same percentile implementation the
  simulator's ``LatencyStats`` uses).  ``prometheus_text()`` serializes
  the whole registry in the Prometheus text exposition format.
* **Trace spans** (``repro.telemetry.spans``) — hierarchical named
  regions timed with ``time.monotonic()``; per-thread stacks mean spans
  opened on pool workers nest correctly.  ``tracer.name_counts()`` is
  the public shape of a trace.
* **Sinks** (``repro.telemetry.sinks``) — ``InMemorySink``,
  ``JsonLinesSink`` (append; what the chaos-soak CI job uploads), and
  ``PrometheusTextSink`` (whole-file replace, scrape semantics).
  ``flush()`` pushes the current registry and finished span trees to
  every attached sink.

What gets instrumented when a ``Telemetry`` handle is threaded through
``SnoopyConfig(telemetry=...)``:

* epoch stages — ``snoopy_epoch_seconds`` and
  ``snoopy_epoch_stage_seconds{stage=collect|build|execute|match|respond}``,
  plus load-balancer sub-stages
  (``snoopy_lb_stage_seconds{stage=route|pad|sort|dedupe}``) and subORAM
  phases (``snoopy_suboram_phase_seconds{phase=table|scan|extract}``);
* exec backends — ``exec_task_queue_seconds`` vs ``exec_task_run_seconds``
  per backend, ``exec_worker_crashes_total`` / ``exec_worker_respawns_total``
  / ``exec_task_timeouts_total``, and the sticky-worker state cache as
  ``exec_state_cache_total{event=hit|miss|full_ship}``;
* oblivious kernels — per-level sort/compact timings through the
  existing ``KernelTrace`` seam (``repro.telemetry.kernelbridge``;
  meaningful on the numpy kernel, which records levels as it executes);
* store crypto — ``snoopy_aead_seal_batch_total`` /
  ``snoopy_aead_open_batch_total`` (one increment per whole-store batch
  pass, under both the batched HMAC and vector kernels),
  ``snoopy_keystream_derivations_total`` (vector kernel only: one
  fresh-nonce keystream derivation per batch — the observable behind
  SECURITY.md's keystream-reuse invariant),
  ``snoopy_aead_bytes_total{op,kernel}`` and
  ``snoopy_store_verified_bytes_total``.  These are throughput
  diagnostics: the differential harness excludes them from the
  workload-invariant public slice it compares across configurations;
* retry/replication — ``retry_epochs_failed_total`` /
  ``retry_epochs_retried_total`` / ``retry_backoff_seconds_total`` /
  ``replication_recoveries_total``, mirroring the retry controller's
  stats dict;
* fault injection — ``fault_injected_total{kind=...}``, mirroring
  ``FaultInjector.stats``.

CLI: ``python -m repro demo --metrics-out metrics.prom --trace-out
trace.jsonl`` writes the Prometheus exposition and the JSON-lines trace,
and the demo always prints an epoch-stage breakdown table.  The
benchmarks emit the same spans, so ``BENCH_parallelism.json`` and
``BENCH_kernels.json`` gain a ``stages`` section.

Off by default, cheap when off: every instrumentation point goes through
a handle that defaults to :data:`NULL_TELEMETRY`, whose methods return
shared no-op objects without allocating.

Security: exported counters, gauges, histogram *counts*, and span
names/counts are pure functions of the public configuration and batch
shape — never of request contents (SECURITY.md "Telemetry is public
information"; ``tests/test_telemetry_obliviousness.py`` asserts exact
equality for same-shape different-content workloads).  Histogram
*values* are wall-clock timings, public under the same argument as
arrival timing (§2.1).

Process-backend semantics: a ``Telemetry`` handle pickles to
:data:`NULL_TELEMETRY`, so instrumentation inside process-pool workers
silently no-ops instead of recording into a registry the parent never
sees — worker-side metrics (state cache, kernel levels) are recorded
host-side where the protocol outcome is known.  ``copy.deepcopy``
returns the same handle, so armed atomic epoch attempts (which deep-copy
subORAM state) keep reporting to the live registry.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "resolve_telemetry",
    "stage_breakdown",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
]

#: Canonical epoch-stage order for breakdown tables (pipeline order, not
#: alphabetical): how ``snoopy_epoch_stage_seconds`` rows should print.
STAGE_ORDER = ("collect", "build", "execute", "match", "respond")


def stage_breakdown(
    registry: MetricsRegistry,
    metric: str = "snoopy_epoch_stage_seconds",
    label: str = "stage",
) -> List[dict]:
    """Per-stage timing summary rows from one labelled histogram family.

    Returns a list of dicts ``{label, count, mean_s, p95_s, total_s}``,
    one per distinct ``label`` value of ``metric``, ordered by
    :data:`STAGE_ORDER` first (pipeline order) and alphabetically for
    any other label values.  The CLI renders this as the demo's
    epoch-stage table; the benchmarks serialize it as the ``stages``
    section of their BENCH JSONs.
    """
    rows = []
    for hist in registry.histograms(metric):
        value = dict(hist.labels).get(label, "")
        rows.append({
            label: value,
            "count": hist.count,
            "mean_s": hist.mean,
            "p95_s": hist.p95,
            "total_s": hist.sum,
        })
    order = {stage: index for index, stage in enumerate(STAGE_ORDER)}
    rows.sort(key=lambda row: (order.get(row[label], len(order)), row[label]))
    return rows


class _Timer:
    """Context manager that observes its elapsed time into a histogram."""

    __slots__ = ("_histogram", "_t0", "elapsed")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.monotonic() - self._t0
        self._histogram.observe(self.elapsed)


class Telemetry:
    """The live telemetry handle: one registry, one tracer, n sinks.

    Pass it as ``SnoopyConfig(telemetry=...)`` (or directly to the
    lower-level components) and call :meth:`flush` when you want sinks
    to see the state.  See the package docstring for the full guide.
    """

    #: True on live handles, False on :class:`NullTelemetry` — lets hot
    #: paths skip building label dicts entirely when telemetry is off.
    enabled = True

    def __init__(self, sinks: Sequence[object] = ()):  # noqa: D107
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.sinks: List[object] = list(sinks)

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter on the registry."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge on the registry."""
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create a histogram on the registry."""
        return self.registry.histogram(name, **labels)

    def span(self, name: str, **attrs):
        """Open a trace span: ``with telemetry.span("epoch", n=3): ...``."""
        return self.tracer.span(name, **attrs)

    def time(self, name: str, **labels) -> _Timer:
        """Time a block into histogram ``name``:
        ``with telemetry.time("snoopy_epoch_stage_seconds", stage="build"): ...``."""
        return _Timer(self.registry.histogram(name, **labels))

    def add_sink(self, sink: object) -> None:
        """Attach another sink; it sees state at the next :meth:`flush`."""
        self.sinks.append(sink)

    def flush(self) -> None:
        """Push the registry and all finished span trees to every sink."""
        roots = self.tracer.roots
        for sink in self.sinks:
            sink.emit(self.registry, roots)

    def __reduce__(self):
        """Pickle to the null handle: process-pool workers must not
        record into a registry the parent process never merges."""
        return (_null_telemetry, ())

    def __deepcopy__(self, memo) -> "Telemetry":
        """Deep copies share the handle: armed atomic epoch attempts run
        on copied state but report to the live registry."""
        return self


class _NullMetric:
    """Shared no-op stand-in for Counter/Gauge/Histogram when disabled."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def set_max(self, value: float) -> None:
        """Discard the peak."""

    def observe(self, value: float) -> None:
        """Discard the sample."""


class _NullContext:
    """Shared no-op span/timer context manager."""

    __slots__ = ()
    elapsed = 0.0
    span = None

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_METRIC = _NullMetric()
_NULL_CONTEXT = _NullContext()


class NullTelemetry:
    """The off-by-default handle: every operation is a shared no-op.

    No registry, no tracer, no allocation per call — instrumented hot
    paths cost two attribute lookups when telemetry is off.  Use the
    :data:`NULL_TELEMETRY` singleton rather than instantiating.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def histogram(self, name: str, **labels) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def span(self, name: str, **attrs) -> _NullContext:
        """Return the shared no-op context manager."""
        return _NULL_CONTEXT

    def time(self, name: str, **labels) -> _NullContext:
        """Return the shared no-op context manager."""
        return _NULL_CONTEXT

    def add_sink(self, sink: object) -> None:
        """Ignore the sink."""

    def flush(self) -> None:
        """Nothing to flush."""

    def __reduce__(self):
        """All null handles unpickle to the singleton."""
        return (_null_telemetry, ())

    def __deepcopy__(self, memo) -> "NullTelemetry":
        """Deep copies are the singleton too."""
        return self


#: Module-level singleton used wherever no telemetry handle was supplied.
NULL_TELEMETRY = NullTelemetry()


def _null_telemetry() -> NullTelemetry:
    """Pickle target: resolve to the process-local null singleton."""
    return NULL_TELEMETRY


def resolve_telemetry(handle: Optional[object]) -> object:
    """``handle`` if given, else :data:`NULL_TELEMETRY`.

    The one-liner every constructor uses so ``telemetry=None`` (the
    default everywhere) means "off, for free"."""
    return handle if handle is not None else NULL_TELEMETRY
