"""Hierarchical trace spans with monotonic timing.

A :class:`Span` is a named, timed region of work — an epoch, a pipeline
stage inside it, a kernel pass inside that.  Spans nest: the tracer
keeps a per-thread stack, so a span opened while another is active
becomes its child, and the finished trace always forms a forest of
trees (a property ``tests/test_telemetry_properties.py`` fuzzes).

Timing uses ``time.monotonic()`` — wall-clock jumps (NTP, suspend)
cannot produce negative durations.  Span *names and counts* are pure
functions of configuration and batch shape and are safe to export; the
durations are wall-clock measurements, public under the same argument
as arrival timing (SECURITY.md).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class Span:
    """One named, timed region in a trace tree.

    Created via :meth:`Tracer.span`; ``duration`` is valid once the
    span's ``with`` block exits.  ``attrs`` carries small public
    annotations (e.g. ``stage="build"``, ``tasks=4``).
    """

    __slots__ = ("name", "attrs", "children", "start", "end", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: float = 0.0
        self._t0: float = 0.0

    @property
    def duration(self) -> float:
        """Elapsed monotonic seconds between enter and exit."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """Recursive plain-dict form for the JSON-lines trace sink."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "duration": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self):
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    """Context manager that opens ``span`` on enter and closes on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self.span)


class Tracer:
    """Collects span trees, one stack per thread.

    Thread-pool stages each build their own tree (their stacks are
    thread-local), so concurrent stages never corrupt each other's
    nesting; all finished roots land in one shared list.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span named ``name``; use as ``with tracer.span(...)``.

        The span becomes a child of the innermost open span on this
        thread, or a new root if none is open.
        """
        return _SpanContext(self, Span(name, attrs))

    def _push(self, span: Span) -> None:
        span._t0 = time.monotonic()
        span.start = span._t0
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.monotonic()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # mismatched exit: drop the span from wherever it sits
            if span in stack:
                stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    @property
    def roots(self) -> List[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def name_counts(self) -> Dict[str, int]:
        """How many spans of each name finished, over all trees.

        This is the public shape of a trace: two same-shape workloads
        must produce identical name counts
        (``tests/test_telemetry_obliviousness.py``).
        """
        counts: Dict[str, int] = {}
        for root in self.roots:
            for span in root.walk():
                counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop all finished spans (open stacks are untouched)."""
        with self._lock:
            self._roots.clear()
