"""The subORAM batch-access protocol (Figure 19).

``batch_access`` implements the three phases of Figure 7:

➊ build a two-tier oblivious hash table over the (distinct) batch, keyed
  by a *fresh* per-batch PRF key;
➋ linearly scan every stored object; for each object, scan the object's
  two hash buckets entirely, performing two oblivious compare-and-sets per
  slot — one that captures the object's prior value into a matching
  request, one that applies a matching write to the object.  Every object
  is re-encrypted and rewritten whether or not it changed;
➌ scan the table marking real entries, obliviously compact out the
  fillers, and return the batch entries (now carrying response values).

Security rests on Definition 2: the batch must contain *distinct* keys
(the load balancer guarantees this; we enforce it loudly).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.crypto.keys import KeyChain
from repro.errors import DuplicateRequestError, NotInitializedError
from repro.oblivious.hashtable import TwoTierHashTable, TwoTierParams
from repro.oblivious.kernels import ScanTable, resolve_kernel
from repro.oblivious.primitives import and_bit, eq_bit, o_select
from repro.suboram.store import EncryptedStore
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.kernelbridge import TimedKernelTrace, flush_kernel_trace
from repro.types import BatchEntry, OpType
from repro.utils.validation import require, require_positive


class SubOram:
    """One data partition plus the Figure 19 batch-access engine.

    Args:
        suboram_id: index of this partition.
        value_size: fixed object size in bytes (160 in most experiments).
        keychain: deployment keys (storage encryption, per-batch keys).
        security_parameter: lambda for hash-table sizing.
        kernel: oblivious-kernel selector ("python" or "numpy", see
            :mod:`repro.oblivious.kernels`).  The python kernel runs the
            audited scalar Figure 19 loop; the numpy kernel runs the
            structure-of-arrays scan with byte-identical results.
        crypto: store-crypto selector: ``"scalar"`` seals/opens one slot
            per AEAD call (the audited oracle); ``"batched"`` (default)
            moves whole-store reads and the write-back re-encryption
            through one batched pass per epoch
            (:meth:`~repro.suboram.store.EncryptedStore.get_batch` /
            ``put_batch``) with byte-identical responses; ``"vector"``
            additionally switches the store onto the counter-mode crypto
            kernel of :mod:`repro.crypto.vector` — one nonce-derived
            keystream and one vectorized polynomial-MAC pass per epoch,
            O(1) Python calls regardless of store size, same plaintext
            responses (ciphertext bytes differ from the HMAC kernel;
            lengths and schedules do not).  Batched/vector modes
            silently degrade to the scalar path when the vectorized
            prerequisites are absent (python kernel, no NumPy, or an
            instrumented store subclass).
    """

    #: Valid store-crypto selectors.
    CRYPTO_MODES = ("scalar", "batched", "vector")

    def __init__(
        self,
        suboram_id: int,
        value_size: int,
        keychain: Optional[KeyChain] = None,
        security_parameter: int = 128,
        kernel=None,
        crypto: str = "batched",
    ):
        require_positive(value_size, "value_size")
        require(
            crypto in self.CRYPTO_MODES,
            f"unknown crypto mode {crypto!r}; valid modes: "
            f"{list(self.CRYPTO_MODES)}",
        )
        self.suboram_id = suboram_id
        self.value_size = value_size
        self.security_parameter = security_parameter
        self.kernel = resolve_kernel(kernel)
        self.crypto = crypto
        self._keychain = keychain if keychain is not None else KeyChain()
        self._store: Optional[EncryptedStore] = None
        self._keys: List[int] = []  # physical slot -> object key (scan order)
        self._epoch = 0
        self._state_version = 0
        #: Telemetry handle; the deployment attaches its live handle here.
        #: A live handle pickles to the null one, so subORAMs shipped to
        #: process-pool workers record nothing worker-side.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Initialization (Figure 19, Initialize)
    # ------------------------------------------------------------------
    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Load this partition's objects into the encrypted store."""
        self._state_version += 1
        storage_key = self._keychain.subkey(f"suboram/{self.suboram_id}/storage")
        self._keys = sorted(objects)
        self._store = EncryptedStore(
            storage_key,
            num_slots=len(self._keys),
            value_size=self.value_size,
            crypto_kernel="vector" if self.crypto == "vector" else "hmac",
        )
        self._store.telemetry = self.telemetry
        values = []
        for key in self._keys:
            value = objects[key]
            require(
                len(value) == self.value_size,
                f"object {key} has size {len(value)}, expected {self.value_size}",
            )
            values.append(value)
        if self.crypto != "scalar" and self._store.supports_batch:
            self._store.put_batch(self._keys, values)
        else:
            for slot, (key, value) in enumerate(zip(self._keys, values)):
                self._store.put(slot, key, value)

    @property
    def num_objects(self) -> int:
        """Number of objects in this partition."""
        return len(self._keys)

    @property
    def store(self) -> EncryptedStore:
        """The encrypted backing store (raises if uninitialized)."""
        if self._store is None:
            raise NotInitializedError("subORAM not initialized")
        return self._store

    @property
    def state_token(self) -> int:
        """Monotonic version of this subORAM's mutable state.

        Bumped by every state mutation (``initialize``, ``batch_access``),
        so an execution backend can tell whether a worker-side cached copy
        of this subORAM is still current without shipping the state.
        """
        return self._state_version

    # ------------------------------------------------------------------
    # Batch access (Figure 19, BatchAccess)
    # ------------------------------------------------------------------
    def batch_access(
        self,
        batch: List[BatchEntry],
        batch_key: Optional[bytes] = None,
        table_params: Optional[TwoTierParams] = None,
    ) -> List[BatchEntry]:
        """Process one batch of distinct requests; returns response entries.

        Each returned entry's ``value`` is the object's value *before* the
        batch (read semantics for reads; prior value for writes, matching
        the paper's ``OStoreBatchAccess`` contract).  Dummy entries come
        back too — the load balancer filters them while matching responses.

        Raises:
            NotInitializedError: ``initialize`` has not been called.
            DuplicateRequestError: two batch entries share a key
                (Definition 2 precondition violated — load-balancer bug).
        """
        if self._store is None:
            raise NotInitializedError("subORAM not initialized")
        if not batch:
            return []

        keys = [entry.key for entry in batch]
        if len(set(keys)) != len(keys):
            raise DuplicateRequestError(
                f"subORAM {self.suboram_id} received duplicate keys in batch"
            )

        self._epoch += 1
        self._state_version += 1
        # Re-attach the live telemetry handle: a store that crossed a
        # process boundary came back with the null handle.
        self._store.telemetry = self.telemetry
        if batch_key is None:
            batch_key = self._keychain.batch_key(self.suboram_id, self._epoch)

        # ➊ Construct the oblivious hash table of requests (fresh key).
        with self.telemetry.time(
            "snoopy_suboram_phase_seconds", phase="table"
        ):
            table = TwoTierHashTable.build(
                batch,
                key_fn=_entry_key,
                prf_key=batch_key,
                params=table_params,
                security_parameter=self.security_parameter,
                kernel=self.kernel,
            )

        # ➋ Linear scan over every stored object.  The scalar reference
        # path interleaves get/compute/put per slot; the vectorized path
        # reads every slot, runs the whole scan as masked array ops, then
        # rewrites every slot.  Both schedules are public functions of
        # ``num_objects`` alone (see repro.security.simulator).
        with self.telemetry.time(
            "snoopy_suboram_phase_seconds", phase="scan"
        ):
            if self.kernel.vectorized:
                matched = self._scan_vectorized(table, batch)
            else:
                matched = self._scan_reference(table, batch)

        # ➌ Null responses whose key is absent from the partition (a write
        # payload must not echo back as a phantom read value), then mark
        # real entries and compact out table fillers.
        with self.telemetry.time(
            "snoopy_suboram_phase_seconds", phase="extract"
        ):
            for entry in batch:
                entry.value = o_select(matched[id(entry)], None, entry.value)
            return table.extract_real()

    def _scan_reference(
        self, table: TwoTierHashTable, batch: List[BatchEntry]
    ) -> Dict[int, int]:
        """The audited scalar Figure 19 scan (python kernel).

        ``matched`` tracks, per entry, whether any stored object carried
        its key — updated through the same oblivious select on every
        slot comparison, and used by the caller to null out responses for
        keys that do not exist in this partition.
        """
        matched: Dict[int, int] = {id(entry): 0 for entry in batch}
        for slot in range(self.num_objects):
            obj_key, obj_value = self._store.get(slot)
            for table_slot in table.lookup_slots(obj_key):
                entry = table_slot.item
                if entry is None:
                    # Filler slot: perform the same pair of selects against
                    # a throwaway cell so the touched-slot count is uniform.
                    _ = o_select(0, obj_value, obj_value)
                    continue
                match = and_bit(
                    eq_bit(entry.key, obj_key), 1
                )
                matched[id(entry)] = o_select(match, matched[id(entry)], 1)
                is_write = eq_bit(entry.op, OpType.WRITE)
                prior = obj_value
                # Write path: object takes the request's payload on match.
                # Denied writes (§D access control) never apply; the extra
                # `permitted` bit is checked inside the same oblivious
                # compare-and-set so denial is invisible in the trace.
                obj_value = o_select(
                    and_bit(match, and_bit(is_write, entry.permitted)),
                    obj_value,
                    entry.value if entry.value is not None else obj_value,
                )
                # Response path: request captures the prior object value.
                entry.value = o_select(match, entry.value, prior)
            # Rewrite (re-encrypt) the object unconditionally: the host
            # cannot tell written objects from untouched ones.
            self._store.put(slot, obj_key, obj_value)
        return matched

    def _scan_vectorized(
        self, table: TwoTierHashTable, batch: List[BatchEntry]
    ) -> Dict[int, int]:
        """The structure-of-arrays Figure 19 scan (numpy kernel).

        In batched-crypto mode the whole store is authenticated,
        decrypted, scanned, and re-encrypted through four vectorized
        passes (``get_batch`` → ``lookup_matrix`` → ``scan_soa`` →
        ``put_batch``) with no per-slot Python call.  In scalar mode the
        same kernel core runs between per-slot ``get``/``put`` calls —
        the audited per-slot crypto oracle.  Outputs are byte-identical
        to :meth:`_scan_reference` either way.
        """
        store = self._store
        batched = (
            self.crypto in ("batched", "vector")
            and store.supports_batch
            and hasattr(self.kernel, "scan_soa")
        )
        if batched:
            okeys, ovals = store.get_batch()
            obj_keys = okeys.tolist()
            lookup = table.lookup_matrix(obj_keys)
        else:
            obj_keys = []
            obj_values: List[bytes] = []
            for slot in range(self.num_objects):
                obj_key, obj_value = store.get(slot)
                obj_keys.append(obj_key)
                obj_values.append(obj_value)
            lookup = [table.bucket_slot_indices(key) for key in obj_keys]
        slots = table.slots
        scan_table = ScanTable(
            keys=[0 if s.item is None else s.item.key for s in slots],
            occupied=[0 if s.item is None else 1 for s in slots],
            is_write=[
                0 if s.item is None else eq_bit(s.item.op, OpType.WRITE)
                for s in slots
            ],
            permitted=[
                0 if s.item is None else s.item.permitted for s in slots
            ],
            values=[None if s.item is None else s.item.value for s in slots],
        )
        kernel_trace = (
            TimedKernelTrace() if self.telemetry.enabled else None
        )
        if batched:
            new_ovals, slot_matched, responses = self.kernel.scan_soa(
                okeys, ovals, lookup, scan_table, trace=kernel_trace
            )
        else:
            new_values, slot_matched, responses = self.kernel.scan(
                obj_keys, obj_values, self.value_size, lookup, scan_table,
                trace=kernel_trace,
            )
        if kernel_trace is not None:
            flush_kernel_trace(
                self.telemetry.registry, kernel_trace, self.kernel.name
            )
        if batched:
            store.put_batch(obj_keys, new_ovals)
        else:
            for slot in range(self.num_objects):
                store.put(slot, obj_keys[slot], new_values[slot])
        matched: Dict[int, int] = {id(entry): 0 for entry in batch}
        for index, table_slot in enumerate(slots):
            entry = table_slot.item
            if entry is None:
                continue
            entry.value = responses[index]
            matched[id(entry)] = slot_matched[index]
        return matched

    # ------------------------------------------------------------------
    # Introspection for tests / tools
    # ------------------------------------------------------------------
    def peek(self, key: int) -> Optional[bytes]:
        """Direct read for verification (bypasses obliviousness machinery)."""
        if self._store is None:
            return None
        try:
            slot = self._keys.index(key)
        except ValueError:
            return None
        stored_key, value = self._store.get(slot)
        assert stored_key == key
        return value

    def object_keys(self) -> Iterable[int]:
        """Iterator over this partition's object keys, in scan order."""
        return iter(self._keys)


def _entry_key(entry: BatchEntry) -> int:
    return entry.key
