"""Encrypted, integrity-protected object storage outside the enclave (§7).

The paper keeps bulk data in untrusted memory: "The enclave encrypts
objects (for confidentiality) and stores digests of the contents inside
the enclave (for integrity)."  :class:`EncryptedStore` models exactly
that: a host-side array of AEAD ciphertexts plus an enclave-side digest
per physical slot.  Reads authenticate; any host tampering raises
:class:`~repro.errors.IntegrityError`.
"""

from __future__ import annotations

import os
from typing import List

from repro.crypto.aead import AeadKey, NONCE_LEN, digest
from repro.errors import CapacityError, IntegrityError
from repro.utils.validation import require


class EncryptedStore:
    """Fixed-slot encrypted store with per-slot in-enclave digests.

    Slot payloads are ``(key, value)`` pairs serialized as
    ``key(16 bytes, signed) || value``.  Every write re-encrypts under a
    fresh nonce so ciphertexts never repeat even for unchanged plaintext —
    this is what lets the subORAM's write-back scan hide which objects a
    batch modified.
    """

    def __init__(self, encryption_key: bytes, num_slots: int, value_size: int):
        require(num_slots >= 0, "num_slots must be >= 0")
        require(value_size > 0, "value_size must be positive")
        self._aead = AeadKey(encryption_key)
        self.num_slots = num_slots
        self.value_size = value_size
        # Host-visible ciphertexts (nonce, blob) and enclave-held digests.
        self._host: List[tuple] = [None] * num_slots
        self._digests: List[bytes] = [b""] * num_slots

    def put(self, slot: int, key: int, value: bytes) -> None:
        """Encrypt and store an object, refreshing the slot digest.

        Raises:
            CapacityError: ``value`` is not exactly ``value_size`` bytes
                (fixed-size slots are what keep ciphertext lengths
                uniform; a ``ValueError`` subclass for compatibility).
        """
        if len(value) != self.value_size:
            raise CapacityError(
                f"value must be exactly {self.value_size} bytes, got {len(value)}"
            )
        plaintext = key.to_bytes(16, "big", signed=True) + value
        nonce = os.urandom(NONCE_LEN)
        blob = self._aead.seal(nonce, plaintext, aad=slot.to_bytes(8, "big"))
        self._host[slot] = (nonce, blob)
        self._digests[slot] = digest(blob)

    def get(self, slot: int) -> tuple:
        """Fetch, authenticate, and decrypt slot contents; returns (key, value)."""
        stored = self._host[slot]
        if stored is None:
            raise IntegrityError(f"slot {slot} was never written")
        nonce, blob = stored
        if digest(blob) != self._digests[slot]:
            raise IntegrityError(f"slot {slot} ciphertext digest mismatch")
        plaintext = self._aead.open(nonce, blob, aad=slot.to_bytes(8, "big"))
        key = int.from_bytes(plaintext[:16], "big", signed=True)
        return key, plaintext[16:]

    # ------------------------------------------------------------------
    # Host-attack surface, used by integrity tests.
    # ------------------------------------------------------------------
    def host_ciphertext(self, slot: int) -> tuple:
        """What the untrusted host sees for a slot."""
        return self._host[slot]

    def host_tamper(self, slot: int, blob: bytes) -> None:
        """Simulate the host overwriting a ciphertext."""
        nonce, _ = self._host[slot]
        self._host[slot] = (nonce, blob)

    def host_rollback(self, slot: int, old: tuple) -> None:
        """Simulate the host replaying an old (nonce, blob) pair."""
        self._host[slot] = old
