"""Encrypted, integrity-protected object storage outside the enclave (§7).

The paper keeps bulk data in untrusted memory: "The enclave encrypts
objects (for confidentiality) and stores digests of the contents inside
the enclave (for integrity)."  :class:`EncryptedStore` models exactly
that: host-side AEAD ciphertexts plus enclave-side integrity metadata.
Reads authenticate; any host tampering raises
:class:`~repro.errors.IntegrityError`.

Zero-copy layout
================

The store is a structure of arrays: the host side is two contiguous
buffers (all nonces back to back, all fixed-size ``ciphertext || tag``
blobs back to back) rather than a Python list of per-slot tuples.  That
single decision is what the whole batched hot path hangs off:

* :meth:`EncryptedStore.get_batch` authenticates and decrypts the entire
  store in one pass — one SHA-256 over the whole ciphertext buffer
  (instead of one digest per slot), one batched AEAD open
  (:meth:`~repro.crypto.aead.AeadKey.open_batch_buffer`), one NumPy
  reshape into the ``(num_slots, value_size)`` value matrix the
  vectorized scan kernel consumes.  No per-slot Python call, no
  per-object tuples.
* :meth:`EncryptedStore.put_batch` is the mirror image for the
  write-back: fresh nonces for every slot from a single ``os.urandom``
  call, one batched seal straight into the host buffer, one whole-buffer
  digest pinned in the enclave.
* Pickling uses out-of-band :class:`pickle.PickleBuffer` views of the
  contiguous buffers (protocol 5), so process-backend state shipping
  never copies slot payloads through per-object pickle opcodes — and can
  hand the buffers to ``multiprocessing.shared_memory`` untouched (see
  :mod:`repro.exec.shipping`).

Integrity bookkeeping across both paths
=======================================

The enclave pins, per slot, the last nonce *it* wrote; freshness never
depends on host-held data.  Scalar writes additionally keep the seed
implementation's per-slot SHA-256 digest; batched writes keep one digest
of the whole ciphertext buffer instead.  Reads then verify, in order:
the pinned nonce (rollback detection), the freshest digest covering the
slot (tamper detection at memcmp cost), and finally the AEAD tag bound
to the slot index via associated data (cross-slot splicing detection).
A batch read counts the bytes it verified into the
``snoopy_store_verified_bytes_total`` telemetry counter.

The scalar ``put``/``get`` path is byte-compatible with the seed
implementation and remains the audited oracle; instrumented subclasses
that override ``put``/``get`` (e.g. the test harness's ``TracingStore``)
automatically disable the batch fast path (``supports_batch`` is False),
so per-slot access traces keep meaning what they always meant.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional, Sequence

from repro.crypto.aead import AeadKey, NONCE_LEN, digest
from repro.crypto.vector import VectorAead, resolve_crypto_kernel
from repro.errors import CapacityError, IntegrityError
from repro.oblivious import soa
from repro.telemetry import NULL_TELEMETRY
from repro.utils.validation import require

_DIGEST_LEN = 32

#: Store attributes held as contiguous buffers and pickled out-of-band.
_BUFFER_FIELDS = (
    "_host_nonces",
    "_host_blobs",
    "_pinned_nonces",
    "_written",
    "_slot_digests",
    "_digest_fresh",
)

#: Ephemeral attributes rebuilt (empty) after any pickle round-trip.
_EPHEMERAL_FIELDS = ("_slot_aads", "telemetry", "_scratch")


def _rebuild_store(cls, state: dict, *buffers):
    """Reassemble a store from out-of-band pickle buffers.

    The buffers may be views into a shared-memory segment that the
    sender will reuse, so each one is copied into a fresh ``bytearray``
    here — the rebuilt store must never alias transport memory.
    """
    store = cls.__new__(cls)
    store.__dict__.update(state)
    for name, buf in zip(_BUFFER_FIELDS, buffers):
        store.__dict__[name] = bytearray(buf)
    store._slot_aads = None
    store._scratch = {}
    store.telemetry = NULL_TELEMETRY
    return store


class EncryptedStore:
    """Fixed-slot encrypted store over contiguous host buffers.

    Slot payloads are ``(key, value)`` pairs serialized as
    ``key(16 bytes, signed) || value``.  Every write re-encrypts under a
    fresh nonce so ciphertexts never repeat even for unchanged plaintext —
    this is what lets the subORAM's write-back scan hide which objects a
    batch modified.  ``put``/``get`` are the scalar per-slot oracle;
    ``put_batch``/``get_batch`` move the same bytes through one
    vectorized pass per epoch (see the module docstring).
    """

    def __init__(
        self,
        encryption_key: bytes,
        num_slots: int,
        value_size: int,
        crypto_kernel: str = "hmac",
    ):
        require(num_slots >= 0, "num_slots must be >= 0")
        require(value_size > 0, "value_size must be positive")
        self._aead = AeadKey(encryption_key)
        #: Store-crypto kernel: ``"hmac"`` (the audited per-slot scheme,
        #: byte-compatible with the seed) or ``"vector"`` (the
        #: counter-mode kernel of :mod:`repro.crypto.vector`: one
        #: nonce-derived keystream and one vectorized MAC pass per
        #: batch, with the slot index bound as the keystream lane).
        self.crypto_kernel = resolve_crypto_kernel(crypto_kernel)
        self._vec = (
            VectorAead(encryption_key)
            if self.crypto_kernel == "vector"
            else None
        )
        #: Epoch-reused scratch arrays for the batch crypto path (keyed
        #: by shape; see :func:`repro.oblivious.soa.scratch_array`).
        #: Never pickled — a shipped store re-grows its own.
        self._scratch: dict = {}
        self.num_slots = num_slots
        self.value_size = value_size
        #: Plaintext bytes per slot: 16-byte signed key prefix + value.
        self.plain_size = 16 + value_size
        #: Host ciphertext bytes per slot (uniform: plaintext + tag).
        self.slot_size = self.plain_size + 32
        # Host-visible contiguous buffers (untrusted memory).
        self._host_nonces = bytearray(num_slots * NONCE_LEN)
        self._host_blobs = bytearray(num_slots * self.slot_size)
        # Host tampering with a non-uniform-length blob cannot live in the
        # fixed-width buffer; it is tracked here and rejected on read.
        self._odd_blobs: dict = {}
        # Enclave-held integrity metadata.
        self._pinned_nonces = bytearray(num_slots * NONCE_LEN)
        self._written = bytearray(num_slots)
        self._slot_digests = bytearray(num_slots * _DIGEST_LEN)
        self._digest_fresh = bytearray(num_slots)
        self._buffer_digest: Optional[bytes] = None
        # Lazily built per-slot associated data (slot index, 8 bytes BE).
        self._slot_aads: Optional[List[bytes]] = None
        #: Telemetry handle; the owning subORAM attaches its live handle.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Scalar path (the audited oracle)
    # ------------------------------------------------------------------
    def put(self, slot: int, key: int, value: bytes) -> None:
        """Encrypt and store an object, refreshing the slot digest.

        Raises:
            CapacityError: ``value`` is not exactly ``value_size`` bytes
                (fixed-size slots are what keep ciphertext lengths
                uniform; a ``ValueError`` subclass for compatibility).
        """
        if len(value) != self.value_size:
            raise CapacityError(
                f"value must be exactly {self.value_size} bytes, got {len(value)}"
            )
        require(0 <= slot < self.num_slots, f"slot {slot} out of range")
        plaintext = key.to_bytes(16, "big", signed=True) + value
        nonce = os.urandom(NONCE_LEN)
        if self._vec is not None:
            # Vector kernel: the lane index binds the slot (splice
            # detection); a batch of one under a fresh nonce.
            blob = self._vec.seal_one(nonce, plaintext, lane=slot)
        else:
            blob = self._aead.seal(
                nonce, plaintext, aad=slot.to_bytes(8, "big")
            )
        nrow = slot * NONCE_LEN
        self._host_nonces[nrow : nrow + NONCE_LEN] = nonce
        brow = slot * self.slot_size
        self._host_blobs[brow : brow + self.slot_size] = blob
        self._odd_blobs.pop(slot, None)
        self._pinned_nonces[nrow : nrow + NONCE_LEN] = nonce
        self._written[slot] = 1
        drow = slot * _DIGEST_LEN
        self._slot_digests[drow : drow + _DIGEST_LEN] = digest(blob)
        self._digest_fresh[slot] = 1
        # A scalar write invalidates the whole-buffer digest; the next
        # batch read falls back to per-slot verification and re-pins it.
        self._buffer_digest = None

    def get(self, slot: int) -> tuple:
        """Fetch, authenticate, and decrypt slot contents; returns (key, value)."""
        require(0 <= slot < self.num_slots, f"slot {slot} out of range")
        if not self._written[slot]:
            raise IntegrityError(f"slot {slot} was never written")
        nonce, blob = self._host_slot(slot)
        self._verify_slot(slot, nonce, blob)
        if self._vec is not None:
            plaintext = self._vec.open_one(nonce, blob, lane=slot)
        else:
            plaintext = self._aead.open(
                nonce, blob, aad=slot.to_bytes(8, "big")
            )
        key = int.from_bytes(plaintext[:16], "big", signed=True)
        return key, plaintext[16:]

    def _host_slot(self, slot: int) -> tuple:
        """The (nonce, blob) pair currently held by the untrusted host."""
        nrow = slot * NONCE_LEN
        nonce = bytes(self._host_nonces[nrow : nrow + NONCE_LEN])
        if slot in self._odd_blobs:
            return nonce, self._odd_blobs[slot]
        brow = slot * self.slot_size
        return nonce, bytes(self._host_blobs[brow : brow + self.slot_size])

    def _verify_slot(self, slot: int, nonce: bytes, blob: bytes) -> None:
        """Enclave-side freshness + integrity checks for one slot."""
        nrow = slot * NONCE_LEN
        if nonce != bytes(self._pinned_nonces[nrow : nrow + NONCE_LEN]):
            raise IntegrityError(
                f"slot {slot} nonce does not match the enclave-pinned nonce"
            )
        if self._digest_fresh[slot]:
            drow = slot * _DIGEST_LEN
            if digest(blob) != bytes(
                self._slot_digests[drow : drow + _DIGEST_LEN]
            ):
                raise IntegrityError(
                    f"slot {slot} ciphertext digest mismatch"
                )

    # ------------------------------------------------------------------
    # Batched path (one vectorized pass over the whole store)
    # ------------------------------------------------------------------
    @property
    def supports_batch(self) -> bool:
        """Whether the batch fast path preserves this instance's semantics.

        False for subclasses or instances that override the scalar
        ``put``/``get`` (instrumented stores must see every per-slot
        access), and when NumPy is unavailable.  Callers fall back to
        the scalar loop.
        """
        if "get" in self.__dict__ or "put" in self.__dict__:
            return False
        cls = type(self)
        return (
            soa.HAS_NUMPY
            and cls.get is EncryptedStore.get
            and cls.put is EncryptedStore.put
        )

    def _aads(self) -> List[bytes]:
        if self._slot_aads is None:
            self._slot_aads = [
                slot.to_bytes(8, "big") for slot in range(self.num_slots)
            ]
        return self._slot_aads

    def _nonce_list(self, raw: bytes) -> List[bytes]:
        return [
            raw[i * NONCE_LEN : (i + 1) * NONCE_LEN]
            for i in range(self.num_slots)
        ]

    def put_batch(self, keys: Sequence[int], values) -> None:
        """Re-encrypt and store every slot in one batched pass.

        ``keys`` is the per-slot object key column (one entry per slot,
        in slot order) and ``values`` either a ``(num_slots, value_size)``
        uint8 matrix or a list of ``value_size``-byte strings.  Fresh
        nonces for all slots come from a single ``os.urandom`` call; the
        seal runs through :meth:`~repro.crypto.aead.AeadKey.
        seal_batch_buffer` straight into the contiguous host buffer, and
        the enclave pins one digest of the whole buffer.  Byte movement:
        ``num_slots * slot_size`` through one vectorized pass, counted in
        ``snoopy_store_bytes_moved_total{op="seal"}``.
        """
        n = self.num_slots
        if len(keys) != n:
            raise ValueError(f"{len(keys)} keys for {n} slots")
        if not self.supports_batch:
            for slot, key in enumerate(keys):
                value = values[slot]
                self.put(slot, int(key), bytes(value))
            return
        np = soa.require_numpy()
        if isinstance(values, np.ndarray):
            matrix = values
            if matrix.shape != (n, self.value_size):
                raise CapacityError(
                    f"value matrix shape {matrix.shape} != "
                    f"({n}, {self.value_size})"
                )
        else:
            try:
                matrix, has = soa.values_to_matrix(
                    list(values), self.value_size
                )
            except ValueError as exc:
                raise CapacityError(str(exc)) from None
            if not bool(has.all()) and n:
                raise CapacityError("put_batch values must all be present")
        plain = soa.scratch_array(
            self._scratch, "store_plain", (n, self.plain_size), np.uint8
        )
        plain[:, :16] = soa.keys_to_prefix(keys)
        plain[:, 16:] = matrix
        if self._vec is not None:
            # One fresh nonce seeds the whole batch keystream; each slot
            # owns its own lane of it, sealed straight into the host
            # buffer (no intermediate blob copy).
            nonce = os.urandom(NONCE_LEN)
            raw_nonces = nonce * n
            self._vec.seal_lanes(
                nonce,
                plain,
                n,
                self.plain_size,
                out=memoryview(self._host_blobs),
                scratch=self._scratch,
            )
            self.telemetry.counter(
                "snoopy_keystream_derivations_total"
            ).inc()
        else:
            raw_nonces = os.urandom(n * NONCE_LEN)
            blobs, _ = self._aead.seal_batch_buffer(
                self._nonce_list(raw_nonces),
                (plain.tobytes(), self.plain_size),
                self._aads(),
            )
            self._host_blobs[:] = blobs
        self._host_nonces[:] = raw_nonces
        self._odd_blobs.clear()
        self._pinned_nonces[:] = raw_nonces
        self._written[:] = b"\x01" * n
        self._digest_fresh[:] = b"\x00" * n
        self._buffer_digest = digest(bytes(self._host_blobs))
        self.telemetry.counter("snoopy_aead_seal_batch_total").inc()
        self.telemetry.counter(
            "snoopy_store_bytes_moved_total", op="seal"
        ).inc(n * self.slot_size)
        self.telemetry.counter(
            "snoopy_aead_bytes_total", op="seal", kernel=self.crypto_kernel
        ).inc(n * self.slot_size)

    def get_batch(self) -> tuple:
        """Authenticate and decrypt the whole store in one batched pass.

        Returns ``(keys, values)``: the int64 key column and the
        ``(num_slots, value_size)`` uint8 value matrix, both in slot
        order — exactly the SoA inputs of
        :meth:`~repro.oblivious.kernels.NumpyKernel.scan_soa`.  Integrity
        comes from (in order) the enclave-pinned nonces (rollback), one
        digest pass over the contiguous ciphertext buffer — or the
        per-slot digests where fresher — (tamper at memcmp cost, counted
        in ``snoopy_store_verified_bytes_total``), and every slot's AEAD
        tag (splicing).  Raises :class:`IntegrityError` on any deviation,
        including non-uniform ciphertext lengths.
        """
        if not self.supports_batch:
            raise RuntimeError(
                "get_batch requires NumPy and the unmodified scalar path; "
                "use per-slot get()"
            )
        n = self.num_slots
        missing = self._written.find(0)
        if missing >= 0:
            raise IntegrityError(f"slot {missing} was never written")
        if self._odd_blobs:
            raise IntegrityError(
                f"slot {min(self._odd_blobs)} ciphertext length deviates "
                "from the uniform slot size"
            )
        raw_nonces = bytes(self._host_nonces)
        if raw_nonces != bytes(self._pinned_nonces):
            bad = next(
                slot
                for slot in range(n)
                if raw_nonces[slot * NONCE_LEN : (slot + 1) * NONCE_LEN]
                != bytes(
                    self._pinned_nonces[
                        slot * NONCE_LEN : (slot + 1) * NONCE_LEN
                    ]
                )
            )
            raise IntegrityError(
                f"slot {bad} nonce does not match the enclave-pinned nonce"
            )
        blob_buf = bytes(self._host_blobs)
        if self._buffer_digest is not None:
            if digest(blob_buf) != self._buffer_digest:
                raise IntegrityError("store ciphertext buffer digest mismatch")
            self.telemetry.counter("snoopy_store_verified_bytes_total").inc(
                len(blob_buf)
            )
        else:
            # Mixed state after scalar writes: verify the slots that still
            # carry fresh per-slot digests the scalar way.
            for slot in range(n):
                if self._digest_fresh[slot]:
                    brow = slot * self.slot_size
                    blob = blob_buf[brow : brow + self.slot_size]
                    drow = slot * _DIGEST_LEN
                    if digest(blob) != bytes(
                        self._slot_digests[drow : drow + _DIGEST_LEN]
                    ):
                        raise IntegrityError(
                            f"slot {slot} ciphertext digest mismatch"
                        )
        if self._vec is not None:
            plain = self._open_batch_vector(raw_nonces, blob_buf)
        else:
            plain_buf, plain_size = self._aead.open_batch_buffer(
                self._nonce_list(raw_nonces),
                (blob_buf, self.slot_size),
                self._aads(),
            )
            plain = soa.buffer_to_matrix(plain_buf, plain_size)
        self.telemetry.counter("snoopy_aead_open_batch_total").inc()
        self.telemetry.counter(
            "snoopy_store_bytes_moved_total", op="open"
        ).inc(len(blob_buf))
        self.telemetry.counter(
            "snoopy_aead_bytes_total", op="open", kernel=self.crypto_kernel
        ).inc(len(blob_buf))
        keys = soa.prefix_to_keys(plain[:, :16])
        return keys, plain[:, 16:]

    def _open_batch_vector(self, raw_nonces: bytes, blob_buf: bytes):
        """Vector-kernel whole-store open, as a plaintext matrix.

        The fast path applies when every slot shares the batch nonce of
        the last ``put_batch`` — one ``open_lanes`` call for the whole
        store.  After interleaved scalar writes (mixed per-slot nonces)
        each slot opens individually under its own stored nonce; both
        paths verify every tag before releasing plaintext.
        """
        n = self.num_slots
        nonce0 = raw_nonces[:NONCE_LEN]
        if raw_nonces == nonce0 * n:
            return self._vec.open_lanes(
                nonce0,
                blob_buf,
                n,
                self.plain_size,
                scratch=self._scratch,
                as_matrix=True,
            )
        np = soa.require_numpy()
        plain = soa.scratch_array(
            self._scratch, "store_plain_mixed", (n, self.plain_size), np.uint8
        )
        for slot in range(n):
            nonce = raw_nonces[slot * NONCE_LEN : (slot + 1) * NONCE_LEN]
            blob = blob_buf[slot * self.slot_size : (slot + 1) * self.slot_size]
            row = self._vec.open_one(nonce, blob, lane=slot)
            plain[slot] = np.frombuffer(row, dtype=np.uint8)
        return plain

    # ------------------------------------------------------------------
    # Out-of-band pickling (protocol 5): buffers ship without copies.
    # ------------------------------------------------------------------
    def __reduce_ex__(self, protocol):
        if protocol < 5:
            return super().__reduce_ex__(protocol)
        state = {
            name: value
            for name, value in self.__dict__.items()
            if name not in _BUFFER_FIELDS
            and name not in _EPHEMERAL_FIELDS
        }
        buffers = tuple(
            pickle.PickleBuffer(self.__dict__[name])
            for name in _BUFFER_FIELDS
        )
        return (_rebuild_store, (type(self), state) + buffers)

    # ------------------------------------------------------------------
    # Host-attack surface, used by integrity tests.
    # ------------------------------------------------------------------
    def host_ciphertext(self, slot: int) -> Optional[tuple]:
        """What the untrusted host sees for a slot."""
        if not self._written[slot] and slot not in self._odd_blobs:
            return None
        return self._host_slot(slot)

    def host_tamper(self, slot: int, blob: bytes) -> None:
        """Simulate the host overwriting a ciphertext."""
        blob = bytes(blob)
        if len(blob) == self.slot_size:
            brow = slot * self.slot_size
            self._host_blobs[brow : brow + self.slot_size] = blob
            self._odd_blobs.pop(slot, None)
        else:
            self._odd_blobs[slot] = blob

    def host_rollback(self, slot: int, old: tuple) -> None:
        """Simulate the host replaying an old (nonce, blob) pair."""
        nonce, blob = old
        nrow = slot * NONCE_LEN
        self._host_nonces[nrow : nrow + NONCE_LEN] = nonce
        self.host_tamper(slot, blob)
