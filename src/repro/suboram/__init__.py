"""The throughput-optimized subORAM (§5, Figure 19).

A subORAM stores one data partition and serves *batches of distinct
requests*.  Each batch is processed by building a two-tier oblivious hash
table over the requests and performing one linear scan over every stored
object, doing an oblivious compare-and-set between the object and every
slot of the object's two hash buckets.  The scan re-encrypts and rewrites
every object, so the memory trace reveals neither which objects were
requested nor which were written.
"""

from repro.suboram.store import EncryptedStore
from repro.suboram.suboram import SubOram

__all__ = ["EncryptedStore", "SubOram"]
