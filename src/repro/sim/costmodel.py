"""Analytic cost model: L_LB, L_S, and the Eq. (1)-(3) solver (§6).

The planner equations:

    T >= max( L_LB(X*T/L, S),  L * L_S(f(X*T/L, S), N) )        (1)
    L_sys <= 5T/2                                               (2)
    C_sys(L, S) = L*C_LB + S*C_S                                (3)

``load_balancer_time`` and ``suboram_time`` implement the two cost
functions from the algorithms' actual asymptotics (bitonic n log^2 n,
compaction n log n, hash-table construction, linear scan with the EPC
paging knee); ``max_throughput`` inverts Eq. (1) by binary search.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.analysis.balls_bins import batch_size
from repro.oblivious.hashtable import TwoTierParams
from repro.sim.machines import (
    DEFAULT_PROFILE,
    ENTRY_OVERHEAD_BYTES,
    MachineProfile,
)
from repro.utils.bits import next_pow2


def sort_time(
    num_entries: int,
    threads: int = 1,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> float:
    """Bitonic sort wall time for ``num_entries`` with ``threads`` (Fig. 13a).

    Work divides across threads; each of the ``O(log^2 n)`` layers incurs a
    synchronization cost when more than one thread participates, which is
    why a single thread wins below a crossover size.
    """
    if num_entries <= 1:
        return 0.0
    m = next_pow2(num_entries)
    log_m = m.bit_length() - 1
    layers = log_m * (log_m + 1) // 2
    comparators = (m // 2) * layers
    work = comparators * profile.sort_compare_s / max(1, threads)
    sync = layers * profile.sort_sync_s if threads > 1 else 0.0
    return work + sync


def adaptive_sort_time(
    num_entries: int, max_threads: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """The paper's adaptive strategy: best of 1..max_threads (Fig. 13a)."""
    return min(
        sort_time(num_entries, threads, profile)
        for threads in range(1, max(1, max_threads) + 1)
    )


def compact_time(
    num_entries: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """Goodrich compaction: n log n element moves."""
    if num_entries <= 1:
        return 0.0
    m = next_pow2(num_entries)
    return m * (m.bit_length() - 1) * profile.compact_element_s


def load_balancer_time(
    num_requests: int,
    num_suborams: int,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
) -> float:
    """L_LB(R, S): time to build batches and match responses (§4.2).

    Both phases sort and compact ``R + B*S`` entries; matching handles the
    same volume of responses.  Entry size scales byte-proportional costs.
    """
    if num_requests <= 0:
        return 0.0
    size = batch_size(num_requests, num_suborams, security_parameter)
    working = num_requests + size * num_suborams
    scale = (object_size + ENTRY_OVERHEAD_BYTES) / (160 + ENTRY_OVERHEAD_BYTES)

    batch_phase = (
        adaptive_sort_time(working, profile.cores, profile) * scale
        + compact_time(working, profile) * scale
    )
    match_phase = (
        adaptive_sort_time(working + num_requests, profile.cores, profile) * scale
        + compact_time(working + num_requests, profile) * scale
    )
    overhead = num_requests * profile.request_overhead_s
    network = (
        2 * working * (object_size + ENTRY_OVERHEAD_BYTES)
        / profile.network_bandwidth_Bps
        + 2 * profile.network_rtt_s
    )
    return batch_phase + match_phase + overhead + network


def suboram_time(
    batch: int,
    num_objects: int,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
    threads: Optional[int] = None,
) -> float:
    """L_S(B, N): hash-table construction plus the linear scan (§5).

    One enclave core streams data (the host-loader pattern, §7), so the
    scan parallelizes over ``cores - 1`` by default (Fig. 13b).
    """
    if num_objects <= 0 or batch <= 0:
        return 0.0
    if threads is None:
        threads = max(1, profile.cores - 1)

    params = TwoTierParams.for_capacity(batch, security_parameter)
    construct_entries = batch + params.total_slots
    construct = (
        adaptive_sort_time(construct_entries, threads, profile)
        + compact_time(construct_entries, profile)
    )

    per_object = (
        profile.scan_object_s
        + object_size
        * (
            profile.scan_byte_resident_s
            if num_objects * (object_size + ENTRY_OVERHEAD_BYTES)
            <= profile.epc_bytes
            else profile.scan_byte_paged_s
        )
    )
    scan = num_objects * per_object / max(1, threads)
    return construct + scan


def epoch_feasible(
    throughput: float,
    epoch: float,
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
) -> bool:
    """Eq. (1): can the pipeline sustain ``throughput`` at epoch ``T``?"""
    requests_per_balancer = int(math.ceil(throughput * epoch / num_load_balancers))
    if requests_per_balancer == 0:
        return True
    lb_time = load_balancer_time(
        requests_per_balancer, num_suborams, security_parameter, profile, object_size
    )
    per_partition = int(math.ceil(num_objects / num_suborams))
    batch = batch_size(requests_per_balancer, num_suborams, security_parameter)
    so_time = num_load_balancers * suboram_time(
        batch, per_partition, security_parameter, profile, object_size
    )
    return max(lb_time, so_time) <= epoch


def max_throughput(
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    max_latency: float,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
    accesses_per_op: int = 1,
) -> float:
    """Highest sustainable throughput (reqs/s) meeting Eq. (1) and (2).

    Eq. (2) bounds the epoch at ``T <= 2*max_latency/5``; since longer
    epochs amortize dummies and the scan better but inflate the
    superlinear sort, the best epoch may be shorter than the bound — we
    optimize over a small grid of epoch lengths and binary-search
    throughput at each.  ``accesses_per_op`` models applications (e.g.
    key transparency, Fig. 9b) where one logical operation issues several
    ORAM accesses — returned throughput is in *operations* per second.
    """
    max_epoch = 2.0 * max_latency / 5.0
    best = 0.0
    for factor in (1.0, 0.6, 0.35, 0.2):
        epoch = max_epoch * factor
        lo, hi = 0.0, 1e8
        for _ in range(50):
            mid = (lo + hi) / 2.0
            if epoch_feasible(
                mid * accesses_per_op,
                epoch,
                num_load_balancers,
                num_suborams,
                num_objects,
                security_parameter,
                profile,
                object_size,
            ):
                lo = mid
            else:
                hi = mid
        best = max(best, lo)
    return best


def best_split(
    num_machines: int,
    num_objects: int,
    max_latency: float,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
    accesses_per_op: int = 1,
) -> Tuple[int, int, float]:
    """Best (load balancers, subORAMs, throughput) for a machine budget.

    This is how Fig. 9a's curve is generated: "measuring throughput with
    different system configurations and plotting the highest throughput
    configuration for each number of machines".  The split may use fewer
    than ``num_machines`` machines — adding a subORAM the load balancers
    cannot feed only adds dummy overhead, so an operator would idle it.
    """
    best = (1, max(1, num_machines - 1), 0.0)
    for balancers in range(1, num_machines):
        for suborams in range(1, num_machines - balancers + 1):
            throughput = max_throughput(
                balancers,
                suborams,
                num_objects,
                max_latency,
                security_parameter,
                profile,
                object_size,
                accesses_per_op,
            )
            if throughput > best[2]:
                best = (balancers, suborams, throughput)
    return best


def mean_latency(
    throughput: float,
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
) -> float:
    """Mean response latency at a fixed offered load (Fig. 11b).

    The epoch must be long enough to absorb the offered load (smallest
    feasible T); a uniformly arriving request waits T/2 on average, then
    the pipeline takes up to one load-balancer stage plus the subORAM
    stage: mean ~= T/2 + processing <= 5T/2.

    Feasibility is *not* monotone in T (a longer epoch queues more work,
    and per-epoch work grows superlinearly), so the search first scans up
    geometrically for a feasible epoch, then bisects down on the interval
    below it, where infeasibility is caused by too-short epochs only.
    """
    epoch = None
    candidate = 1e-3
    while candidate <= 3600.0:
        if epoch_feasible(
            throughput,
            candidate,
            num_load_balancers,
            num_suborams,
            num_objects,
            security_parameter,
            profile,
            object_size,
        ):
            epoch = candidate
            break
        candidate *= 1.25
    if epoch is None:
        return float("inf")
    lo, hi = epoch / 1.25, epoch
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if epoch_feasible(
            throughput,
            mid,
            num_load_balancers,
            num_suborams,
            num_objects,
            security_parameter,
            profile,
            object_size,
        ):
            hi = mid
        else:
            lo = mid
    epoch = hi
    requests_per_balancer = max(
        1, int(math.ceil(throughput * epoch / num_load_balancers))
    )
    batch = batch_size(requests_per_balancer, num_suborams, security_parameter)
    per_partition = int(math.ceil(num_objects / num_suborams))
    processing = load_balancer_time(
        requests_per_balancer, num_suborams, security_parameter, profile, object_size
    ) + num_load_balancers * suboram_time(
        batch, per_partition, security_parameter, profile, object_size
    )
    return epoch / 2.0 + processing


# ---------------------------------------------------------------------------
# Baseline cost models (anchored to §8.1/§8.2 measurements)
# ---------------------------------------------------------------------------
def oblix_level_sizes(num_objects: int, pack_factor: int = 16,
                      direct_threshold: int = 1024) -> list:
    """Sizes of the data ORAM and each recursive position-map ORAM."""
    sizes = [max(1, num_objects)]
    while sizes[-1] > direct_threshold:
        sizes.append((sizes[-1] + pack_factor - 1) // pack_factor)
    return sizes


def oblix_recursion_levels(num_objects: int, pack_factor: int = 16,
                           direct_threshold: int = 1024) -> int:
    """Recursion depth of the Oblix position map (drives Fig. 10's step)."""
    return len(oblix_level_sizes(num_objects, pack_factor, direct_threshold))


def oblix_access_time(
    num_objects: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """Sequential Oblix access latency: sum of per-level path costs.

    Each level reads and writes back a root-to-leaf path of Z=4 buckets in
    an ORAM sized for that recursion level.
    """
    total_blocks = 0
    for size in oblix_level_sizes(num_objects):
        height = max(1, math.ceil(math.log2(max(2, size))))
        total_blocks += 2 * 4 * (height + 1)
    return total_blocks * profile.oblix_block_s


def oblix_throughput(
    num_objects: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """Sequential Oblix requests/second (~1.15K at 2M objects)."""
    return 1.0 / oblix_access_time(num_objects, profile)


def obladi_throughput(
    num_objects: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """Obladi proxy throughput (~6.7K reqs/s at 2M objects, batch 500)."""
    scale = math.log2(max(2, num_objects)) / math.log2(2_000_000)
    return 1.0 / (profile.obladi_access_s * scale)


def redis_throughput(
    num_machines: int, profile: MachineProfile = DEFAULT_PROFILE
) -> float:
    """Redis cluster throughput: embarrassingly parallel."""
    return num_machines / profile.redis_request_s
