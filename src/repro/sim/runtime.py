"""A virtual-clock runtime: the functional system under a timed workload.

:mod:`repro.sim.events` predicts latencies from the cost model alone;
:class:`SnoopyRuntime` goes one step further and actually *executes*
the functional :class:`~repro.core.snoopy.Snoopy` deployment against a
timed arrival schedule:

* requests arrive at virtual timestamps (e.g. a Poisson process);
* every ``T`` virtual seconds the runtime closes the epoch, runs the
  real oblivious pipeline (so results are genuine, checkable responses),
  and charges the epoch's *virtual* duration from the calibrated cost
  model;
* per-request virtual latencies and all responses are recorded.

This gives end-to-end tests the best of both worlds: real data-path
semantics with modelled wall-clock behaviour.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.balls_bins import batch_size
from repro.core.snoopy import Snoopy
from repro.exec import BackendSpec, make_backend
from repro.sim.costmodel import load_balancer_time, suboram_time
from repro.sim.machines import DEFAULT_PROFILE, MachineProfile
from repro.sim.metrics import LatencyStats
from repro.types import Request, Response


@dataclass
class RuntimeResult:
    """Everything a timed run produced.

    ``virtual_duration`` is modelled time from the calibrated cost model;
    ``wall_seconds`` is *measured* host time spent inside ``run_epoch``,
    which is what changes when the execution backend changes.
    """

    responses: List[Response] = field(default_factory=list)
    latency: LatencyStats = field(default_factory=LatencyStats)
    epochs: int = 0
    virtual_duration: float = 0.0
    wall_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per virtual second."""
        if self.virtual_duration <= 0:
            return 0.0
        return len(self.responses) / self.virtual_duration


class SnoopyRuntime:
    """Drives a functional Snoopy deployment on a virtual clock.

    Args:
        store: the functional deployment to execute.
        profile: machine profile for the virtual-time cost model.
        backend: optional execution-backend override (spec string or
            instance) applied to every epoch this runtime closes; defaults
            to the store's own backend.
    """

    def __init__(
        self,
        store: Snoopy,
        profile: MachineProfile = DEFAULT_PROFILE,
        backend: Optional[BackendSpec] = None,
    ):
        self.store = store
        self.profile = profile
        # Resolve a spec once so every epoch reuses one worker pool.
        self.backend = (
            None
            if backend is None
            else make_backend(backend, store.config.max_workers)
        )

    def _epoch_processing_time(self, num_requests: int) -> float:
        """Virtual duration of one epoch's pipeline (Eq. 1 stages)."""
        config = self.store.config
        requests_per_balancer = max(
            1, math.ceil(num_requests / config.num_load_balancers)
        )
        lb_time = load_balancer_time(
            requests_per_balancer,
            config.num_suborams,
            config.security_parameter,
            self.profile,
            config.value_size,
        )
        size = batch_size(
            requests_per_balancer,
            config.num_suborams,
            config.security_parameter,
        )
        partition = max(self.store.partition_sizes) if self.store.num_objects else 0
        so_time = config.num_load_balancers * suboram_time(
            size,
            partition,
            config.security_parameter,
            self.profile,
            config.value_size,
        )
        return lb_time + so_time

    def run(
        self,
        timed_requests: Iterable[Tuple[float, Request]],
        epoch_duration: Optional[float] = None,
    ) -> RuntimeResult:
        """Execute a timed workload; returns responses + virtual latencies.

        Args:
            timed_requests: (arrival_time, request) pairs, any order.
            epoch_duration: virtual epoch length T; defaults to the
                deployment config's ``epoch_duration``.
        """
        epoch = (
            epoch_duration
            if epoch_duration is not None
            else self.store.config.epoch_duration
        )
        schedule = sorted(timed_requests, key=lambda pair: pair[0])
        result = RuntimeResult()
        if not schedule:
            return result

        last_arrival = schedule[-1][0]
        num_epochs = int(math.floor(last_arrival / epoch)) + 1
        by_epoch: List[List[Tuple[float, Request]]] = [
            [] for _ in range(num_epochs)
        ]
        for arrival, request in schedule:
            by_epoch[int(arrival // epoch)].append((arrival, request))

        pipeline_free = 0.0
        for index, epoch_requests in enumerate(by_epoch):
            if not epoch_requests:
                continue
            close = (index + 1) * epoch
            # Real execution of the oblivious pipeline.
            arrival_times: Dict[Tuple[int, int], float] = {}
            for arrival, request in epoch_requests:
                self.store.submit(request)
                arrival_times[(request.client_id, request.seq)] = arrival
            wall_start = time.perf_counter()
            responses = self.store.run_epoch(backend=self.backend)
            result.wall_seconds += time.perf_counter() - wall_start

            processing = self._epoch_processing_time(len(epoch_requests))
            complete = max(close, pipeline_free) + processing
            pipeline_free = complete

            result.epochs += 1
            result.responses.extend(responses)
            for response in responses:
                arrival = arrival_times.get(
                    (response.client_id, response.seq), close
                )
                result.latency.record(complete - arrival)
            result.virtual_duration = complete
        return result
