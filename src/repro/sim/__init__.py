"""Performance simulation: calibrated cost models + epoch-level simulation.

The paper's evaluation ran on Azure DCsv2 enclaves; we reproduce its
*shapes* (scaling curves, crossovers, breakdowns) with an analytic cost
model whose constants are calibrated to the paper's reported anchors
(DESIGN.md §6) plus a discrete-event epoch simulator for latency
distributions.  Nothing here affects the functional core — it predicts
wall-clock behaviour of a deployment, the way the paper's planner does.
"""

from repro.sim.machines import MachineProfile, DEFAULT_PROFILE
from repro.sim.costmodel import (
    load_balancer_time,
    max_throughput,
    suboram_time,
    best_split,
)
from repro.sim.runtime import RuntimeResult, SnoopyRuntime
from repro.sim.workload import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_requests,
    zipf_requests,
)

__all__ = [
    "DEFAULT_PROFILE",
    "MachineProfile",
    "RuntimeResult",
    "SnoopyRuntime",
    "best_split",
    "bursty_arrivals",
    "load_balancer_time",
    "max_throughput",
    "poisson_arrivals",
    "suboram_time",
    "uniform_requests",
    "zipf_requests",
]
