"""Latency injection: make epoch wall-clock reflect deployment physics.

The functional subORAMs execute in microseconds, so on a small machine
the benefit of running them concurrently is invisible.  In the paper's
deployment every batch crosses a datacenter network and runs inside an
enclave on its *own* machine — per-batch time is dominated by work that
happens **off** the caller's CPU.  :class:`LatencySubOram` reproduces
that: it wraps a functional subORAM and sleeps for a configurable
interval around every ``batch_access``, modelling network RTT plus the
remote machine's processing time.

Under :class:`~repro.exec.backend.SerialBackend` the injected intervals
add up (one machine doing S machines' waiting in sequence); under
:class:`~repro.exec.pools.ThreadPoolBackend` they overlap, so epoch
wall-clock approaches ``max`` instead of ``sum`` — the shape of the
paper's equation (1) and the effect Figure 13 measures.  This is what
``benchmarks/bench_fig13_parallelism.py`` uses to demonstrate the
execution engine's speedup.

Results are unchanged by wrapping: ``LatencySubOram`` delegates every
call to the wrapped subORAM.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.types import BatchEntry
from repro.utils.validation import require


class LatencySubOram:
    """A subORAM proxy that charges wall-clock time per batch access.

    Args:
        inner: the functional subORAM to delegate to (anything with
            ``initialize`` / ``batch_access``).
        batch_delay: seconds to sleep per ``batch_access`` call, modelling
            network round trip + remote enclave processing.
    """

    def __init__(self, inner, batch_delay: float = 0.01):
        require(batch_delay >= 0, "batch_delay must be >= 0")
        self.inner = inner
        self.batch_delay = batch_delay

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Delegate initialization to the wrapped subORAM (no delay)."""
        self.inner.initialize(objects)

    def batch_access(self, batch: List[BatchEntry], *args, **kwargs) -> List[BatchEntry]:
        """Sleep ``batch_delay`` seconds, then delegate the batch access.

        The sleep releases the GIL, so a thread backend overlaps the
        delays of different subORAMs exactly as independent machines
        would.
        """
        if self.batch_delay:
            time.sleep(self.batch_delay)
        return self.inner.batch_access(batch, *args, **kwargs)

    @property
    def num_objects(self) -> int:
        """Number of objects in the wrapped partition."""
        return self.inner.num_objects

    @property
    def suboram_id(self) -> int:
        """Index of the wrapped partition."""
        return self.inner.suboram_id

    def __getattr__(self, name: str):
        """Delegate any other attribute to the wrapped subORAM.

        Dunder lookups fall through untouched so that pickling (process
        backend) does not recurse before ``inner`` exists.
        """
        if name.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)


def latency_suboram_factory(batch_delay: float = 0.01):
    """A ``suboram_factory`` for :class:`~repro.core.snoopy.Snoopy`.

    Returns a factory producing the default linear-scan subORAM wrapped
    in a :class:`LatencySubOram` with the given per-batch delay::

        store = Snoopy(config,
                       suboram_factory=latency_suboram_factory(0.02),
                       backend="thread")
    """

    def factory(suboram_id: int, config, keychain) -> LatencySubOram:
        """Build one latency-wrapped linear-scan subORAM."""
        from repro.core.snoopy import _default_suboram_factory

        return LatencySubOram(
            _default_suboram_factory(suboram_id, config, keychain),
            batch_delay=batch_delay,
        )

    return factory
