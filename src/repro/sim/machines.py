"""Machine profiles: the calibrated constants behind the cost model.

The defaults model the paper's DC4s_v2 instances (4-core Xeon E-2288G,
Intel SGX v1 with ~93.5 MB usable EPC).  Constants were calibrated so the
model hits the paper's reported anchors (see DESIGN.md §6):

* Fig. 9a: ~92K reqs/s at 15 subORAMs + 3 load balancers, 500 ms latency,
  2M 160-byte objects;
* Fig. 11b: ~850 ms mean latency with one subORAM over 2M objects,
  ~110 ms with 15;
* Fig. 12: subORAM batch time jumping when the partition exceeds the EPC;
* Oblix ~1.1 ms/access; Obladi ~6.7K reqs/s at batch 500; Redis ~280K
  reqs/s/machine.

Absolute values are the paper's testbed, not ours; the claims the
benchmarks check are relative (who wins, by what factor, where the knees
are).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# SGX v1 usable EPC (the 256 MB raw EPC minus metadata), as on DCsv2.
USABLE_EPC_BYTES = 93_500_000

# Per-entry bookkeeping bytes alongside each object (key, tags, MAC).
ENTRY_OVERHEAD_BYTES = 48


@dataclass(frozen=True)
class MachineProfile:
    """Calibrated per-machine cost constants (seconds unless noted)."""

    cores: int = 4
    epc_bytes: int = USABLE_EPC_BYTES

    # Oblivious sort: cost per comparator on one entry, plus per-layer
    # synchronization overhead when parallelized (Fig. 13a's crossover).
    sort_compare_s: float = 150e-9
    sort_sync_s: float = 120e-6

    # Oblivious compaction: cost per element per routing layer.
    compact_element_s: float = 40e-9

    # SubORAM linear scan: per-object fixed cost (hash-bucket scanning,
    # AVX compare-and-sets) and per-byte cost (decrypt/re-encrypt),
    # resident vs paged through the host buffer (§7).
    scan_object_s: float = 360e-9
    scan_byte_resident_s: float = 1.9e-9
    scan_byte_paged_s: float = 2.8e-9

    # Per-request constant at the load balancer (parsing, channel crypto).
    request_overhead_s: float = 1.5e-6

    # Network between cloud machines.
    network_bandwidth_Bps: float = 1.0e9
    network_rtt_s: float = 0.5e-3

    # Baseline anchors.
    oblix_block_s: float = 1.7e-6  # per tree-bucket block op
    obladi_access_s: float = 149e-6  # amortized proxy access at 2M objects
    redis_request_s: float = 3.5e-6  # per request per machine

    def with_cores(self, cores: int) -> "MachineProfile":
        """A copy of this profile with a different core count."""
        return replace(self, cores=cores)


DEFAULT_PROFILE = MachineProfile()


# Azure-like monthly prices (USD) used by the planner (Fig. 14b); only
# relative magnitudes matter for the planner's shape.
MONTHLY_COST_LOAD_BALANCER = 292.0  # DC4s_v2
MONTHLY_COST_SUBORAM = 292.0  # DC4s_v2
