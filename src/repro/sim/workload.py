"""Workload generators: request distributions and arrival processes.

The paper benchmarks with a uniform request distribution and notes that —
because the system is oblivious — the distribution cannot affect
performance (§8, "Experiment Setup"); the load balancer's deduplication
specifically neutralizes skew (§4.1).  We therefore provide skewed (Zipf)
and bursty generators too, so tests can *demonstrate* that insensitivity.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.types import OpType, Request


def uniform_requests(
    count: int,
    num_keys: int,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Uniformly distributed reads/writes over ``num_keys`` objects."""
    rng = rng if rng is not None else random.Random()
    requests = []
    for seq in range(count):
        key = rng.randrange(num_keys)
        if rng.random() < write_fraction:
            value = bytes(rng.getrandbits(8) for _ in range(value_size))
            requests.append(Request(OpType.WRITE, key, value, seq=seq))
        else:
            requests.append(Request(OpType.READ, key, seq=seq))
    return requests


class ZipfSampler:
    """Zipf(s) sampler over ``[0, n)`` via inverse-CDF binary search."""

    def __init__(self, num_keys: int, exponent: float = 1.0,
                 rng: Optional[random.Random] = None):
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self._rng = rng if rng is not None else random.Random()
        weights = [1.0 / (rank**exponent) for rank in range(1, num_keys + 1)]
        total = 0.0
        self._cdf = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        """Draw one Zipf-distributed key."""
        target = self._rng.random() * self._total
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo


def zipf_requests(
    count: int,
    num_keys: int,
    exponent: float = 1.0,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Heavily skewed workload — the adversarial case for batch overflow."""
    rng = rng if rng is not None else random.Random()
    sampler = ZipfSampler(num_keys, exponent, rng)
    requests = []
    for seq in range(count):
        key = sampler.sample()
        if rng.random() < write_fraction:
            value = bytes(rng.getrandbits(8) for _ in range(value_size))
            requests.append(Request(OpType.WRITE, key, value, seq=seq))
        else:
            requests.append(Request(OpType.READ, key, seq=seq))
    return requests


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Arrival times of a Poisson process with ``rate`` events/second."""
    rng = rng if rng is not None else random.Random()
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return
        yield t


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    duration: float,
    burst_every: float = 1.0,
    burst_length: float = 0.2,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """A Poisson process alternating base and burst rates (bursty epochs §4.1)."""
    rng = rng if rng is not None else random.Random()
    t = 0.0
    while True:
        in_burst = (t % burst_every) < burst_length
        rate = burst_rate if in_burst else base_rate
        t += rng.expovariate(rate)
        if t >= duration:
            return
        yield t
