"""Deprecated alias of :mod:`repro.workloads` (the scenario factory).

The workload generators started life inside the simulator package;
they are now a first-class subsystem at :mod:`repro.workloads`, with
seeded shape/key-split generators, arrival processes, trace
record/replay, and the replay tuner.  These shims keep the historical
entry points importable — each emits a :class:`DeprecationWarning` on
use and delegates to the new package.  New code should import from
``repro.workloads`` directly.
"""

from __future__ import annotations

import random
import warnings
from typing import Iterator, List, Optional

from repro.types import Request
from repro.workloads import arrivals as _arrivals
from repro.workloads import generators as _generators
from repro.workloads.generators import ZipfSampler as _ZipfSampler


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.sim.workload.{old} is deprecated; use "
        f"repro.workloads.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ZipfSampler(_ZipfSampler):
    """Deprecated alias of :class:`repro.workloads.ZipfSampler`."""

    def __init__(self, num_keys: int, exponent: float = 1.0,
                 rng: Optional[random.Random] = None):
        _deprecated("ZipfSampler", "ZipfSampler")
        super().__init__(num_keys, exponent, rng)


def uniform_requests(
    count: int,
    num_keys: int,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Deprecated alias of :func:`repro.workloads.uniform_requests`."""
    _deprecated("uniform_requests", "uniform_requests")
    return _generators.uniform_requests(
        count, num_keys, write_fraction, value_size, rng
    )


def zipf_requests(
    count: int,
    num_keys: int,
    exponent: float = 1.0,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Deprecated alias of :func:`repro.workloads.zipf_requests`."""
    _deprecated("zipf_requests", "zipf_requests")
    return _generators.zipf_requests(
        count, num_keys, exponent, write_fraction, value_size, rng
    )


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Deprecated alias of :func:`repro.workloads.poisson_arrivals`."""
    _deprecated("poisson_arrivals", "poisson_arrivals")
    return _arrivals.poisson_arrivals(rate, duration, rng)


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    duration: float,
    burst_every: float = 1.0,
    burst_length: float = 0.2,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Deprecated alias of :func:`repro.workloads.bursty_arrivals`."""
    _deprecated("bursty_arrivals", "bursty_arrivals")
    return _arrivals.bursty_arrivals(
        base_rate, burst_rate, duration, burst_every, burst_length, rng
    )
