"""Cluster-level figure series: the evaluation's machine sweeps (§8.2-8.3).

Each function regenerates one figure's data from the calibrated cost
model: Fig. 9a/9b machine sweeps, Fig. 10's Snoopy-Oblix hybrid,
Fig. 11a/11b data-size and latency scaling.  The one *measured* series
lives here too: :func:`epoch_wallclock_series` times real epochs of the
functional system under each execution backend (the engine half of
Fig. 13).
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.balls_bins import batch_size
from repro.sim.costmodel import (
    best_split,
    load_balancer_time,
    mean_latency,
    oblix_access_time,
)
from repro.sim.machines import DEFAULT_PROFILE, MachineProfile


def throughput_scaling_series(
    machine_counts: List[int],
    num_objects: int,
    max_latencies: List[float],
    object_size: int = 160,
    accesses_per_op: int = 1,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> Dict[float, List[Tuple[int, int, int, float]]]:
    """Fig. 9a / 9b data: best (machines, L, S, throughput) per latency cap."""
    series: Dict[float, List[Tuple[int, int, int, float]]] = {}
    for latency in max_latencies:
        rows = []
        for machines in machine_counts:
            balancers, suborams, throughput = best_split(
                machines,
                num_objects,
                latency,
                object_size=object_size,
                accesses_per_op=accesses_per_op,
                profile=profile,
            )
            rows.append((machines, balancers, suborams, throughput))
        series[latency] = rows
    return series


# ---------------------------------------------------------------------------
# Fig. 10: Oblix as the subORAM behind Snoopy's load balancer
# ---------------------------------------------------------------------------
def snoopy_oblix_feasible(
    throughput: float,
    epoch: float,
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    security_parameter: int = 128,
    profile: MachineProfile = DEFAULT_PROFILE,
    object_size: int = 160,
) -> bool:
    """Eq. (1) with an Oblix subORAM: batch served by sequential accesses.

    An Oblix subORAM has no batch amortization: each of the batch's ``B``
    requests costs a full sequential recursive access over the shard
    (Oblix "does not employ batching or parallelism", §8.1).  The hybrid
    still wins by sharding — each access runs over ``N/S`` objects with
    fewer recursion levels, which produces Fig. 10's step between 8 and 9
    machines.
    """
    requests_per_balancer = int(math.ceil(throughput * epoch / num_load_balancers))
    if requests_per_balancer == 0:
        return True
    lb_time = load_balancer_time(
        requests_per_balancer, num_suborams, security_parameter, profile, object_size
    )
    shard = int(math.ceil(num_objects / num_suborams))
    size = batch_size(requests_per_balancer, num_suborams, security_parameter)
    so_time = num_load_balancers * size * oblix_access_time(shard, profile)
    return max(lb_time, so_time) <= epoch


def snoopy_oblix_max_throughput(
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    max_latency: float,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> float:
    """Binary-search the hybrid's sustainable throughput."""
    epoch = 2.0 * max_latency / 5.0
    lo, hi = 0.0, 1e7
    for _ in range(50):
        mid = (lo + hi) / 2.0
        if snoopy_oblix_feasible(
            mid, epoch, num_load_balancers, num_suborams, num_objects,
            profile=profile,
        ):
            lo = mid
        else:
            hi = mid
    return lo


def snoopy_oblix_best_split(
    num_machines: int,
    num_objects: int,
    max_latency: float,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> Tuple[int, int, float]:
    """Best (L, S, throughput) for the Snoopy-Oblix hybrid (Fig. 10)."""
    best = (1, max(1, num_machines - 1), 0.0)
    for balancers in range(1, num_machines):
        suborams = num_machines - balancers
        throughput = snoopy_oblix_max_throughput(
            balancers, suborams, num_objects, max_latency, profile
        )
        if throughput > best[2]:
            best = (balancers, suborams, throughput)
    return best


# ---------------------------------------------------------------------------
# Fig. 11: scaling for data size and latency under constant load
# ---------------------------------------------------------------------------
def max_objects_within_latency(
    num_suborams: int,
    latency_target: float = 0.160,
    load: float = 500.0,
    object_size: int = 160,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> int:
    """Fig. 11a: largest store keeping mean latency under the target.

    One load balancer, constant offered load; answers "how much data can S
    subORAMs hold at under 160 ms" (the US-Europe RTT the paper uses).
    """
    lo, hi = 0, 50_000_000
    while lo < hi:
        mid = (lo + hi + 1) // 2
        latency = mean_latency(
            load, 1, num_suborams, mid, object_size=object_size, profile=profile
        )
        if latency <= latency_target:
            lo = mid
        else:
            hi = mid - 1
    return lo


# ---------------------------------------------------------------------------
# Fig. 13 (engine half): measured epoch wall-clock per execution backend
# ---------------------------------------------------------------------------
def epoch_wallclock_series(
    backends: List[str],
    num_load_balancers: int = 2,
    num_suborams: int = 4,
    num_objects: int = 128,
    requests_per_epoch: int = 32,
    epochs: int = 3,
    value_size: int = 16,
    batch_delay: float = 0.01,
    seed: int = 7,
    max_workers: Optional[int] = None,
    kernel: str = "python",
    stage_sink: Optional[Dict[str, list]] = None,
    pipelined: bool = False,
    pipeline_depth: Optional[int] = None,
) -> Dict[str, float]:
    """Measured mean epoch wall-clock for each execution backend.

    Builds one functional deployment per backend (identical object
    contents and request schedule, latency-wrapped subORAMs charging
    ``batch_delay`` per batch to model per-machine network/enclave time),
    runs ``epochs`` epochs, and returns ``{backend_spec: mean epoch
    seconds}``.  Serial execution pays ``L*S`` delays per epoch; a
    parallel backend overlaps them — the measured counterpart of
    equation (1)'s max-of-stages shape.

    Backends that cannot run the latency wrapper in-process still work
    (the wrapper pickles), so ``"process"`` specs are accepted.  The
    ``kernel`` selector picks the oblivious-kernel implementation
    (``"python"`` or ``"numpy"``) so backend speedups can be measured on
    either data plane.

    ``stage_sink``, when given a dict, receives a per-backend epoch-stage
    timing breakdown: ``stage_sink[spec]`` becomes the
    :func:`repro.telemetry.stage_breakdown` rows measured for that
    backend's run (each run gets its own fresh
    :class:`~repro.telemetry.Telemetry` handle, so rows never mix across
    specs).  ``None`` (default) measures with telemetry off.

    With ``pipelined=True`` each backend's run drives the same schedule
    through the epoch pipeline (:meth:`~repro.core.snoopy.Snoopy.\
start_pipeline` with the clock off — the measurement closes epochs
    itself so both modes run identical epoch compositions): submissions
    of epoch ``e+1`` and its close overlap the execute/match of ``e``,
    so the reported mean epoch seconds reflect §6's throughput shape
    rather than the sequential latency shape.
    """
    from repro.core.config import SnoopyConfig
    from repro.core.snoopy import Snoopy
    from repro.sim.latency import latency_suboram_factory
    from repro.types import OpType, Request

    objects = {key: bytes(value_size) for key in range(num_objects)}
    schedule_rng = random.Random(seed)
    schedule = [
        [
            (
                schedule_rng.randrange(num_objects),
                schedule_rng.randrange(num_load_balancers),
            )
            for _ in range(requests_per_epoch)
        ]
        for _ in range(epochs)
    ]

    series: Dict[str, float] = {}
    for spec in backends:
        telemetry = None
        if stage_sink is not None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        config = SnoopyConfig(
            num_load_balancers=num_load_balancers,
            num_suborams=num_suborams,
            value_size=value_size,
            execution_backend=spec,
            max_workers=max_workers,
            kernel=kernel,
            telemetry=telemetry,
        )
        with Snoopy(
            config, suboram_factory=latency_suboram_factory(batch_delay)
        ) as store:
            store.initialize(objects)
            start = time.perf_counter()
            if pipelined:
                pipeline = store.start_pipeline(
                    depth=pipeline_depth, clock=False
                )
                for epoch_schedule in schedule:
                    for key, balancer in epoch_schedule:
                        store.submit(
                            Request(OpType.READ, key),
                            load_balancer=balancer,
                        )
                    pipeline.close_epoch()
                pipeline.flush()
                pipeline.stop()
            else:
                for epoch_schedule in schedule:
                    for key, balancer in epoch_schedule:
                        store.submit(
                            Request(OpType.READ, key),
                            load_balancer=balancer,
                        )
                    store.run_epoch()
            series[spec] = (time.perf_counter() - start) / epochs
        if stage_sink is not None:
            from repro.telemetry import stage_breakdown

            stage_sink[spec] = stage_breakdown(telemetry.registry)
    return series


def latency_vs_suborams(
    suboram_counts: List[int],
    num_objects: int = 2_000_000,
    load: float = 500.0,
    object_size: int = 160,
    profile: MachineProfile = DEFAULT_PROFILE,
) -> List[Tuple[int, float]]:
    """Fig. 11b: mean latency as subORAMs parallelize the linear scan."""
    return [
        (
            s,
            mean_latency(
                load, 1, s, num_objects, object_size=object_size, profile=profile
            ),
        )
        for s in suboram_counts
    ]
