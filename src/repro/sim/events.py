"""Epoch-level discrete-event simulation of a Snoopy deployment.

The analytic model (:mod:`repro.sim.costmodel`) answers "what's the best
sustainable throughput"; this simulator answers "what latencies do real
arrival processes see".  Requests arrive over continuous time; every
``T`` seconds each load balancer closes its epoch, spends
``L_LB`` building batches, the subORAMs spend ``L * L_S`` executing them
(pipelined across epochs), and responses complete.  The paper's Eq. (2)
bound — mean latency <= 5T/2 — is validated against this simulation in
the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.analysis.balls_bins import batch_size
from repro.sim.costmodel import load_balancer_time, suboram_time
from repro.sim.machines import DEFAULT_PROFILE, MachineProfile
from repro.sim.metrics import LatencyStats


@dataclass
class EpochSimConfig:
    """Deployment + workload parameters for the epoch simulator."""

    num_load_balancers: int = 1
    num_suborams: int = 1
    num_objects: int = 100_000
    object_size: int = 160
    epoch_duration: float = 0.2
    security_parameter: int = 128
    profile: MachineProfile = field(default_factory=lambda: DEFAULT_PROFILE)


class EpochSimulator:
    """Simulates request latencies under epoch-batched processing.

    The pipeline per epoch ``k`` (closing at time ``(k+1)*T``):

    * requests arriving in ``[kT, (k+1)T)`` wait for the epoch to close;
    * the load balancer then takes ``L_LB`` to build batches;
    * the subORAM stage takes ``L * L_S`` (each subORAM executes one
      batch per load balancer);
    * the load balancer matches responses (folded into ``L_LB``, §4.2.3);
    * all of the epoch's requests complete together (batch responses,
      which also closes the response-timing side channel, §10).

    Stages are pipelined: epoch ``k+1``'s batch building may overlap epoch
    ``k``'s subORAM scan, but a stage cannot start before the previous
    epoch's same stage finished (single machine per stage).
    """

    def __init__(self, config: EpochSimConfig):
        self.config = config

    def run(self, arrival_times: Iterable[float]) -> LatencyStats:
        """Simulate; returns latency statistics for all completed requests."""
        config = self.config
        arrivals = sorted(arrival_times)
        stats = LatencyStats()
        if not arrivals:
            return stats

        epoch = config.epoch_duration
        num_epochs = int(math.floor(arrivals[-1] / epoch)) + 1
        per_epoch: List[List[float]] = [[] for _ in range(num_epochs)]
        for t in arrivals:
            per_epoch[int(t // epoch)].append(t)

        lb_free = 0.0  # when the load-balancer stage is next available
        so_free = 0.0  # when the subORAM stage is next available
        for k, epoch_arrivals in enumerate(per_epoch):
            if not epoch_arrivals:
                continue
            close = (k + 1) * epoch
            requests_per_balancer = max(
                1, math.ceil(len(epoch_arrivals) / config.num_load_balancers)
            )
            lb_time = load_balancer_time(
                requests_per_balancer,
                config.num_suborams,
                config.security_parameter,
                config.profile,
                config.object_size,
            )
            size = batch_size(
                requests_per_balancer,
                config.num_suborams,
                config.security_parameter,
            )
            so_time = config.num_load_balancers * suboram_time(
                size,
                math.ceil(config.num_objects / config.num_suborams),
                config.security_parameter,
                config.profile,
                config.object_size,
            )

            batch_ready = max(close, lb_free) + lb_time / 2.0
            scan_done = max(batch_ready, so_free) + so_time
            complete = scan_done + lb_time / 2.0  # response matching
            lb_free = max(close, lb_free) + lb_time
            so_free = scan_done

            for t in epoch_arrivals:
                stats.record(complete - t)
        return stats
