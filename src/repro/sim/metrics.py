"""Latency/throughput metric helpers for the simulators and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, List


class LatencyStats:
    """Collects latency samples; reports mean and percentiles."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        """Record one latency sample."""
        self.samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Record many latency samples."""
        self.samples.extend(latencies)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency over all samples."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """p in [0, 100]; nearest-rank percentile."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        """Largest recorded latency."""
        return max(self.samples) if self.samples else 0.0


def throughput(num_requests: int, duration: float) -> float:
    """Requests per second over a measurement window."""
    if duration <= 0:
        return 0.0
    return num_requests / duration
