"""Latency/throughput metric helpers for the simulators and benchmarks."""

from __future__ import annotations

from typing import Iterable, List

from repro.telemetry.registry import nearest_rank_percentile


class LatencyStats:
    """Collects latency samples; reports mean and percentiles."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        """Record one latency sample."""
        self.samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Record many latency samples."""
        self.samples.extend(latencies)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency over all samples."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """p in [0, 100]; nearest-rank percentile.

        Delegates to the single shared implementation in
        :func:`repro.telemetry.registry.nearest_rank_percentile`, so the
        simulator and the telemetry histograms can never drift apart
        (``tests/test_telemetry.py`` cross-checks them).
        """
        return nearest_rank_percentile(sorted(self.samples), p)

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        """Largest recorded latency."""
        return max(self.samples) if self.samples else 0.0


def throughput(num_requests: int, duration: float) -> float:
    """Requests per second over a measurement window."""
    if duration <= 0:
        return 0.0
    return num_requests / duration
