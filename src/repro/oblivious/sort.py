"""Bitonic sort — the paper's oblivious sort (§4.2.1).

Batcher's bitonic sorting network performs compare-and-swaps "in a fixed,
predefined order; since its access pattern is independent of the final order
of the objects, bitonic sort is oblivious".  Runtime is
``O(n log^2 n)`` comparators with depth ``O(log^2 n)``, which is why the
paper parallelizes it across enclave threads (Fig. 13a).

This implementation:

* works on any length by padding to the next power of two with a sentinel
  that sorts last (padding size is public — it depends only on ``n``),
* takes an arbitrary key function, exactly like the paper's ordering
  functions ``f_order`` (order by subORAM then tag bit, by object id then
  tag bit, ...),
* exposes the comparator schedule so the performance model can count
  network size and depth.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.oblivious.primitives import ocmp_swap
from repro.utils.bits import next_pow2

# Sentinel wrapper: real items sort by (0, key(item)); padding is (1,) which
# compares greater than every real key tuple.
_PAD = object()


def comparator_schedule(n: int) -> Iterator[Tuple[int, int, bool]]:
    """Yield the fixed (i, j, ascending) comparator sequence for size ``n``.

    ``n`` must be a power of two.  The schedule depends only on ``n`` —
    this is the formal content of bitonic sort's obliviousness.
    """
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    yield i, partner, ascending
            j //= 2
        k *= 2


@lru_cache(maxsize=None)
def bitonic_sort_levels(n: int) -> List[List[Tuple[int, int, bool]]]:
    """The comparator schedule grouped into its depth levels.

    Returns one list per network level, each holding that level's
    ``(i, j, ascending)`` comparators.  The schedule is a pure function
    of ``n`` and every epoch replays it, so results are memoized —
    callers must treat the returned lists as immutable.  ``n`` is padded
    to the next power of two, mirroring :func:`bitonic_sort`.  Two
    properties make this the unit the vectorized kernels consume:

    * the comparators within one level touch pairwise-disjoint cells, so
      a whole level can be applied as one masked whole-array min/max
      operation without changing any outcome;
    * concatenating the levels reproduces ``comparator_schedule`` exactly
      (and ``len(bitonic_sort_levels(n)) == bitonic_sort_depth(n)``),
      which is what makes the depth formula — and the vectorized
      execution order — testable against the real schedule.
    """
    m = next_pow2(max(1, n))
    levels: List[List[Tuple[int, int, bool]]] = []
    k = 2
    while k <= m:
        j = k // 2
        while j >= 1:
            level = []
            for i in range(m):
                partner = i ^ j
                if partner > i:
                    level.append((i, partner, (i & k) == 0))
            levels.append(level)
            j //= 2
        k *= 2
    return levels


def bitonic_sort_network_size(n: int) -> int:
    """Number of comparators for an ``n``-input network (n padded to pow2)."""
    m = next_pow2(max(1, n))
    if m == 1:
        return 0
    log_m = m.bit_length() - 1
    return (m // 2) * (log_m * (log_m + 1) // 2)


def bitonic_sort_depth(n: int) -> int:
    """Comparator depth — the quantity parallel threads divide (Fig. 13a)."""
    m = next_pow2(max(1, n))
    if m == 1:
        return 0
    log_m = m.bit_length() - 1
    return log_m * (log_m + 1) // 2


def bitonic_sort(items: Sequence, key: Callable = None, mem_factory=None) -> List:
    """Return a new list with ``items`` sorted obliviously by ``key``.

    Args:
        items: input sequence (not modified).
        key: ordering function; defaults to identity.  The key is evaluated
            inside the comparator, matching the paper's ``f_order``.
        mem_factory: optional callable wrapping the working list (e.g.
            :class:`repro.oblivious.memory.TracedMemory`) so tests can
            capture the access trace.

    The sort is stable *only* insofar as the caller's key breaks ties;
    bitonic networks are not inherently stable.  Callers in this library
    always sort by fully distinguishing key tuples when order matters.
    """
    if key is None:
        key = _identity
    n = len(items)
    if n <= 1:
        return list(items)

    m = next_pow2(n)
    work: List = list(items) + [_PAD] * (m - n)
    mem = mem_factory(work) if mem_factory is not None else work

    for i, j, ascending in comparator_schedule(m):
        a = mem[i]
        b = mem[j]
        swap_bit = int((_sort_key(key, a) > _sort_key(key, b)) == ascending)
        # Re-write through the oblivious swap so both cells are always
        # written; we already read a and b above, the swap reads again to
        # keep its own trace shape uniform.
        ocmp_swap(mem, swap_bit, i, j)

    result = [mem[i] for i in range(m)]
    return [x for x in result if x is not _PAD]


def _identity(x):
    return x


def _sort_key(key: Callable, item) -> tuple:
    if item is _PAD:
        return (1,)
    return (0, key(item))
