"""Oblivious compare-and-set / compare-and-swap operators.

The paper builds every oblivious algorithm "on top of an oblivious
'compare-and-set' operator that allows us to copy a value if a condition is
true without leaking if the copy happened or not" (§4.2).  The C++
implementation uses AVX-512 conditional moves; at the Python level of our
model the observable is the *address sequence*, so each operator touches the
same addresses regardless of the condition:

* both operands are always read,
* both destinations are always written (with either the old or new value,
  selected without branching on secret data).

``o_select`` implements the branchless select by indexing a two-element
tuple with the condition bit — address-wise this is a single fixed access.
"""

from __future__ import annotations


def o_select(bit: int, if_zero, if_one):
    """Return ``if_one`` when ``bit`` is 1 else ``if_zero``.

    ``bit`` must be 0 or 1.  Selection is by tuple indexing, which performs
    no data-dependent memory access at the granularity of our model.
    """
    return (if_zero, if_one)[bit]


def ocmp_set(mem, bit: int, dst: int, src: int) -> None:
    """If ``bit`` is 1, set ``mem[dst] = mem[src]`` — always touching both.

    Mirrors the paper's ``OCmpSet(b, x, y)``: reads both cells, writes the
    destination unconditionally with the selected value.
    """
    src_val = mem[src]
    dst_val = mem[dst]
    mem[dst] = o_select(bit, dst_val, src_val)


def ocmp_set_value(mem, bit: int, dst: int, value) -> None:
    """If ``bit`` is 1, set ``mem[dst] = value``; same trace either way."""
    dst_val = mem[dst]
    mem[dst] = o_select(bit, dst_val, value)


def ocmp_swap(mem, bit: int, i: int, j: int) -> None:
    """If ``bit`` is 1, swap ``mem[i]`` and ``mem[j]`` — always touching both.

    Mirrors the paper's ``OCmpSwap(b, x, y)``; this is the only primitive
    bitonic sort and Goodrich compaction need.
    """
    a = mem[i]
    b = mem[j]
    mem[i] = o_select(bit, a, b)
    mem[j] = o_select(bit, b, a)


def o_counter_increment(counter: int, bit: int) -> int:
    """Branchlessly add ``bit`` to a running counter.

    Used for the oblivious per-subORAM distinct-request counters in the load
    balancer (§4.2.2) and within-bucket indices in the hash table.
    """
    return counter + bit


def eq_bit(a, b) -> int:
    """1 if ``a == b`` else 0, as an int (comparison is register-local)."""
    return int(a == b)


def lt_bit(a, b) -> int:
    """1 if ``a < b`` else 0, as an int."""
    return int(a < b)


def and_bit(a: int, b: int) -> int:
    """Logical AND of two 0/1 bits."""
    return a & b


def or_bit(a: int, b: int) -> int:
    """Logical OR of two 0/1 bits."""
    return a | b


def not_bit(a: int) -> int:
    """Logical NOT of a 0/1 bit."""
    return 1 - a
