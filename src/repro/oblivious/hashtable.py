"""Two-tier oblivious hash table (Chan et al.), the subORAM's core (§5).

The subORAM builds an oblivious hash table over the *batch of requests*,
then performs a single linear scan over the stored objects, looking each
object up in the table.  Obliviousness requires:

* construction access patterns independent of which request lands in which
  bucket (achieved with oblivious sort + oblivious compaction),
* fixed, public bucket sizes — never sized by the actual load (that would
  leak request popularity; §5 "Choosing an oblivious hash table"),
* lookups that scan *entire* buckets in both tiers.

Sizing.  Tier-1 buckets are deliberately small (cheap lookups); requests
that overflow a tier-1 bucket spill into a second, independently keyed
table whose capacity ``C2`` and bucket size are *public functions of the
batch capacity alone* (Theorem 3 applied to the spill).  Construction
conceals how many requests actually spilled by always routing exactly
``C2`` entries (real spills topped up with fillers) into tier 2.

All table dimensions derive from ``(capacity, security_parameter, knobs)``
— never from request contents — which is the checkable security property
(see ``tests/test_obliviousness.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.balls_bins import batch_size
from repro.crypto.prf import Prf
from repro.errors import CapacityError
from repro.oblivious import soa
from repro.oblivious.kernels import resolve_kernel
from repro.oblivious.primitives import o_select


@dataclass(frozen=True)
class TwoTierParams:
    """Public dimensions of a two-tier table.

    Attributes:
        capacity: maximum number of (real) items the table holds.
        tier1_buckets: number of tier-1 buckets.
        tier1_bucket_size: slots per tier-1 bucket (Z1).
        tier2_capacity: fixed number of entries routed to tier 2 (C2).
        tier2_buckets: number of tier-2 buckets.
        tier2_bucket_size: slots per tier-2 bucket (Z2).
        security_parameter: lambda used for the tier-2 Chernoff sizing.
    """

    capacity: int
    tier1_buckets: int
    tier1_bucket_size: int
    tier2_capacity: int
    tier2_buckets: int
    tier2_bucket_size: int
    security_parameter: int

    @classmethod
    def for_capacity(
        cls,
        capacity: int,
        security_parameter: int = 128,
        tier1_load: float = 4.0,
        tier1_slack: int = 6,
    ) -> "TwoTierParams":
        """Derive all dimensions from the public batch capacity.

        Tier-1 buckets hold ``ceil(tier1_load) + tier1_slack`` slots around
        an expected load of ``tier1_load``; the spill bound ``C2`` is a
        conservative public function of capacity (validated empirically by
        property tests to leave orders-of-magnitude margin); tier-2 buckets
        are sized by Theorem 3 so tier-2 overflow is cryptographically
        negligible.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        b1 = max(1, math.ceil(capacity / tier1_load))
        z1 = int(math.ceil(tier1_load)) + tier1_slack
        c2 = max(8, capacity // 8 + 4 * math.isqrt(capacity) + 8)
        c2 = min(c2, capacity) if capacity >= 8 else capacity
        c2 = max(c2, 1)
        b2 = max(1, math.ceil(c2 / tier1_load))
        z2 = batch_size(c2, b2, security_parameter)
        return cls(
            capacity=capacity,
            tier1_buckets=b1,
            tier1_bucket_size=z1,
            tier2_capacity=c2,
            tier2_buckets=b2,
            tier2_bucket_size=z2,
            security_parameter=security_parameter,
        )

    @property
    def tier1_slots(self) -> int:
        """Total tier-1 slots (buckets x bucket size)."""
        return self.tier1_buckets * self.tier1_bucket_size

    @property
    def tier2_slots(self) -> int:
        """Total tier-2 slots (buckets x bucket size)."""
        return self.tier2_buckets * self.tier2_bucket_size

    @property
    def total_slots(self) -> int:
        """Total slots across both tiers."""
        return self.tier1_slots + self.tier2_slots

    @property
    def lookup_scan_slots(self) -> int:
        """Slots touched per lookup: one full bucket in each tier."""
        return self.tier1_bucket_size + self.tier2_bucket_size


class _Slot:
    """One hash-table slot: a payload plus a real/dummy flag."""

    __slots__ = ("item", "real")

    def __init__(self, item=None, real: int = 0):
        self.item = item
        self.real = real


class TwoTierHashTable:
    """An oblivious hash table over a batch of distinct-keyed items.

    Typical use (the subORAM's Figure 19 loop)::

        table = TwoTierHashTable.build(batch, key_fn, prf_key, params)
        for obj in store:                     # fixed linear scan
            for slot in table.lookup_slots(obj.key):
                ...oblivious compare-and-set against slot...
        survivors = table.extract_real()      # oblivious compaction

    ``key_fn`` maps an item to its integer id; dummy items must have ids
    that are still well-defined (the load balancer gives dummies fresh ids
    hashing to the right subORAM).
    """

    def __init__(
        self,
        params: TwoTierParams,
        prf1: Prf,
        prf2: Prf,
        slots: List[_Slot],
        key_fn: Callable,
        kernel=None,
    ):
        self.params = params
        self._prf1 = prf1
        self._prf2 = prf2
        self._slots = slots
        self._key_fn = key_fn
        self._kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        items: Sequence,
        key_fn: Callable,
        prf_key: bytes,
        params: Optional[TwoTierParams] = None,
        security_parameter: int = 128,
        is_real_fn: Optional[Callable] = None,
        mem_factory=None,
        kernel=None,
    ) -> "TwoTierHashTable":
        """Obliviously construct the table from ``items``.

        Args:
            items: at most ``params.capacity`` items with distinct keys.
            key_fn: item -> integer id.
            prf_key: per-batch secret key (resampled every batch, §5).
            params: public dimensions; derived from ``len(items)`` if None.
            security_parameter: lambda for derived params.
            is_real_fn: item -> bool; defaults to "everything is real".
                Items marked not-real are carried as dummies (they occupy
                slots and are scanned, but ``extract_real`` drops them).
            mem_factory: optional traced-memory wrapper passed to the
                internal oblivious sorts/compactions (security tests).
                Forces the python kernel when given.
            kernel: oblivious-kernel selector (name or instance, see
                :mod:`repro.oblivious.kernels`) for the internal sorts
                and compactions.
        """
        if params is None:
            params = TwoTierParams.for_capacity(
                max(1, len(items)), security_parameter
            )
        if len(items) > params.capacity:
            raise CapacityError(
                f"{len(items)} items exceed table capacity {params.capacity}"
            )
        if is_real_fn is None:
            is_real_fn = _always_real

        prf1 = Prf(prf_key + b"/tier1")
        prf2 = Prf(prf_key + b"/tier2")

        def tier2_key_fn(item):
            if isinstance(item, _SpillFiller):
                return item.key
            return key_fn(item)

        tier1, spill = cls._build_tier(
            [(item, int(bool(is_real_fn(item)))) for item in items],
            key_fn,
            prf1,
            params.tier1_buckets,
            params.tier1_bucket_size,
            spill_capacity=params.tier2_capacity,
            mem_factory=mem_factory,
            kernel=kernel,
        )
        tier2, overflow = cls._build_tier(
            spill,
            tier2_key_fn,
            prf2,
            params.tier2_buckets,
            params.tier2_bucket_size,
            spill_capacity=0,
            mem_factory=mem_factory,
            kernel=kernel,
        )
        if overflow:
            raise CapacityError(
                "tier-2 oblivious hash table overflowed; probability of this"
                f" event is <= 2^-{params.security_parameter} under Theorem 3"
            )
        return cls(params, prf1, prf2, tier1 + tier2, key_fn, kernel=kernel)

    @staticmethod
    def _build_tier(
        tagged_items: List[tuple],
        key_fn: Callable,
        prf: Prf,
        num_buckets: int,
        bucket_size: int,
        spill_capacity: int,
        mem_factory=None,
        kernel=None,
    ) -> tuple:
        """Build one tier; returns (slots, spill_entries).

        ``tagged_items`` is a list of (item, real_bit).  The tier always
        emits ``num_buckets * bucket_size`` slots in bucket order and, when
        ``spill_capacity > 0``, exactly ``spill_capacity`` spill entries
        (real spills topped up with filler dummies) so the spill size is
        public.  When ``spill_capacity == 0`` the returned spill list
        contains only real entries; non-empty means overflow.
        """
        kern = resolve_kernel(kernel, mem_factory)
        # Working records: [bucket, kind, within_bucket_index, item, real].
        # kind 0 = real/dummy payload entry, kind 1 = bucket filler.
        buckets = prf.range_many(
            [key_fn(item) for item, _ in tagged_items], num_buckets
        )
        records = [
            [bucket, 0, 0, item, real_bit]
            for bucket, (item, real_bit) in zip(buckets, tagged_items)
        ]
        for bucket in range(num_buckets):
            for _ in range(bucket_size):
                records.append([bucket, 1, 0, None, 0])

        # Oblivious sort groups buckets, payload entries before fillers.
        records = kern.sort(
            records,
            columns=[[r[0] for r in records], [r[1] for r in records]],
            mem_factory=mem_factory,
        )

        # Fixed scan: assign within-bucket indices.
        prev_bucket = -1
        index_in_bucket = 0
        for record in records:
            same = int(record[0] == prev_bucket)
            index_in_bucket = o_select(same, 0, index_in_bucket)
            record[2] = index_in_bucket
            index_in_bucket += 1
            prev_bucket = record[0]

        keep_flags = [int(r[2] < bucket_size) for r in records]
        spill_flags = [
            int(r[2] >= bucket_size and r[1] == 0) for r in records
        ]
        num_spilled = sum(spill_flags)

        kept = kern.compact(records, keep_flags, mem_factory=mem_factory)
        # Filler slots (bucket fillers and tier-2 spill fillers) normalize
        # to item=None so scans can treat every non-payload slot uniformly.
        slots = [
            _Slot(
                item=None if (r[1] == 1 or isinstance(r[3], _SpillFiller)) else r[3],
                real=o_select(r[1], r[4], 0),
            )
            for r in kept
        ]

        if spill_capacity == 0:
            spilled = kern.compact(records, spill_flags, mem_factory=mem_factory)
            return slots, [(r[3], r[4]) for r in spilled if r[4]]

        if num_spilled > spill_capacity:
            raise CapacityError(
                f"tier-1 spill {num_spilled} exceeds public bound {spill_capacity}"
            )
        # Top the spill up to exactly spill_capacity with fillers so its
        # size is public.  The fillers get fresh ids deterministically
        # derived from their index; their real bit is 0.
        padded = list(records)
        padded_flags = list(spill_flags)
        for i in range(spill_capacity):
            filler_id = -(2**62 + i)  # id space disjoint from real/dummy ids
            padded.append([0, 1, 0, _SpillFiller(filler_id), 0])
            # Keep filler i only while i < spill_capacity - num_spilled:
            # computed by a fixed scan over public-length arrays; the flag
            # value itself is secret-dependent but never branches.
            padded_flags.append(int(i < spill_capacity - num_spilled))
        spill_entries = kern.compact(padded, padded_flags, mem_factory=mem_factory)
        return slots, [(r[3], r[4]) for r in spill_entries]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def bucket_slot_indices(self, key: int) -> List[int]:
        """Indices (into the flat slot array) of both buckets for ``key``.

        The caller must scan *all* returned slots (the scan hides which
        slot, if any, matched).
        """
        p = self.params
        b1 = self._prf1.range(key, p.tier1_buckets)
        b2 = self._prf2.range(key, p.tier2_buckets)
        tier1_start = b1 * p.tier1_bucket_size
        tier2_start = p.tier1_slots + b2 * p.tier2_bucket_size
        return list(range(tier1_start, tier1_start + p.tier1_bucket_size)) + list(
            range(tier2_start, tier2_start + p.tier2_bucket_size)
        )

    def lookup_matrix(self, keys: Sequence[int]):
        """Bucket-slot index rows for a whole key column, as int64 matrix.

        Row ``i`` equals ``bucket_slot_indices(keys[i])`` — the PRF
        bucket derivations run through the batched
        :meth:`~repro.crypto.prf.Prf.range_many` and the intra-bucket
        offsets are broadcast instead of materialized per key.  This is
        the lookup input of the vectorized scan kernel.
        """
        np = soa.require_numpy()
        p = self.params
        b1 = np.asarray(
            self._prf1.range_many(keys, p.tier1_buckets), dtype=np.int64
        )
        b2 = np.asarray(
            self._prf2.range_many(keys, p.tier2_buckets), dtype=np.int64
        )
        tier1_start = b1 * p.tier1_bucket_size
        tier2_start = p.tier1_slots + b2 * p.tier2_bucket_size
        return np.concatenate(
            [
                tier1_start[:, None]
                + np.arange(p.tier1_bucket_size, dtype=np.int64)[None, :],
                tier2_start[:, None]
                + np.arange(p.tier2_bucket_size, dtype=np.int64)[None, :],
            ],
            axis=1,
        )

    def lookup_slots(self, key: int) -> List[_Slot]:
        """The slot objects of both buckets for ``key`` (scan them all)."""
        return [self._slots[i] for i in self.bucket_slot_indices(key)]

    @property
    def slots(self) -> List[_Slot]:
        """The flat slot array (tier 1 followed by tier 2)."""
        return self._slots

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract_real(self) -> List:
        """Obliviously compact out dummies; returns the real items (§5 ➌)."""
        flags = [slot.real for slot in self._slots]
        kept = self._kernel.compact(self._slots, flags)
        return [slot.item for slot in kept]


class _SpillFiller:
    """Filler entry occupying a tier-2 slot; has an id so hashing works."""

    __slots__ = ("key",)

    def __init__(self, key: int):
        self.key = key


def _always_real(_item) -> bool:
    return True


def spill_filler_key(filler) -> int:
    """Key extractor understanding both real items and spill fillers."""
    return filler.key
