"""Oblivious building blocks (§4.2.1 of the paper).

These are the primitives Theorems 1 and 2 assume:

* an oblivious compare-and-set / compare-and-swap operator
  (:mod:`repro.oblivious.primitives`),
* an oblivious sorting algorithm — bitonic sort
  (:mod:`repro.oblivious.sort`),
* an oblivious, order-preserving compaction algorithm — Goodrich's routing
  network (:mod:`repro.oblivious.compact`),
* a two-tier oblivious hash table — Chan et al.
  (:mod:`repro.oblivious.hashtable`),
* interchangeable *kernels* executing sort/compaction/scan either as the
  traced scalar reference or as NumPy structure-of-arrays passes over the
  same fixed schedules (:mod:`repro.oblivious.kernels`).

Obliviousness in our model means: the sequence of *memory addresses*
touched depends only on public parameters (array length, capacity), never
on element contents.  :class:`repro.oblivious.memory.TracedMemory` records
the address trace so tests can assert this property directly.
"""

from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.oblivious.primitives import o_select, ocmp_set, ocmp_swap
from repro.oblivious.sort import (
    bitonic_sort,
    bitonic_sort_levels,
    bitonic_sort_network_size,
)
from repro.oblivious.compact import goodrich_compact, ocompact
from repro.oblivious.hashtable import TwoTierHashTable, TwoTierParams
from repro.oblivious.kernels import (
    KERNELS,
    KernelTrace,
    NumpyKernel,
    PythonKernel,
    ScanTable,
    resolve_kernel,
)
from repro.oblivious.shuffle import oblivious_shuffle
from repro.oblivious.permutation import apply_permutation, route_permutation

__all__ = [
    "AccessTrace",
    "KERNELS",
    "KernelTrace",
    "NumpyKernel",
    "PythonKernel",
    "ScanTable",
    "TracedMemory",
    "TwoTierHashTable",
    "TwoTierParams",
    "apply_permutation",
    "bitonic_sort",
    "bitonic_sort_levels",
    "bitonic_sort_network_size",
    "goodrich_compact",
    "o_select",
    "oblivious_shuffle",
    "ocmp_set",
    "ocmp_swap",
    "ocompact",
    "resolve_kernel",
    "route_permutation",
]
