"""Oblivious kernels: pluggable python/numpy executors for the data plane.

Snoopy's per-epoch cost is dominated by three oblivious building blocks —
bitonic sort (§4.2.1), Goodrich order-preserving compaction, and the
subORAM's linear scan over the two-tier hash table (Figure 19).  All
three are *oblivious* precisely because their memory-touch schedule is a
public function of the input sizes alone; the data only decides which of
two values lands in each fixed slot.  That is also exactly the property
that makes them vectorizable: a whole sort level, routing layer, or scan
batch can be executed as one masked whole-array operation without
changing a single address in the public schedule.

Selector semantics
==================

Every data-plane entry point (``SnoopyConfig``, ``SubOram``,
``generate_batches``, ``match_responses``, the CLI and the benchmarks)
accepts ``kernel="python" | "numpy"``:

* ``"python"`` — the reference oracle.  It delegates to the original
  one-comparator/one-slot implementations (``bitonic_sort``,
  ``goodrich_compact``, the interleaved Figure 19 loop), so it remains
  compatible with element-granular ``mem_factory`` tracing
  (:class:`repro.oblivious.memory.TracedMemory`) and with the security
  simulator's predicted traces.
* ``"numpy"`` — the structure-of-arrays fast path.  Keys become
  ``int64`` columns, values a ``uint8`` matrix
  (:mod:`repro.oblivious.soa`), and each network level is applied as one
  masked gather/scatter.  When NumPy is not installed, requesting
  ``"numpy"`` falls back to ``"python"`` with a ``RuntimeWarning``
  instead of crashing.

Call sites resolve the selector with
``resolve_kernel(kernel, mem_factory)``: passing a ``mem_factory``
forces the python kernel, because element-granular tracing is only
meaningful for the scalar reference path.

Why level-granular traces are the right obliviousness oracle
============================================================

The element-granular trace (every ``R i``/``W j``) is the natural oracle
for scalar code, but a vectorized kernel performs each level as *one*
array operation — asking "which Python-level index was read first"
stops being meaningful below the level boundary, while the security
argument never needed it: bitonic sort's guarantee is that the
*comparator schedule* is a function of ``n`` only, and Goodrich's is
that every layer touches every slot in a fixed order.  The level is the
finest granularity at which the two implementations share an execution
structure, and it is exactly the granularity of the published schedule.

So both kernels can record a :class:`KernelTrace` — events like
``("sort_level", m, level_index, num_comparators)``,
``("compact_level", m, offset)`` and ``("scan_slot", object_index,
lookup_row)`` — and the property tests assert two things: the python and
numpy kernels emit *identical* traces for the same public sizes, and the
trace is unchanged across different secret inputs of the same shape.
Together with byte-identical outputs, that pins the vectorized path to
the same public schedule as the audited reference path.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.oblivious import soa
from repro.oblivious.compact import goodrich_compact
from repro.oblivious.primitives import and_bit, eq_bit, o_select
from repro.oblivious.sort import bitonic_sort, bitonic_sort_levels
from repro.utils.bits import next_pow2


class KernelTrace:
    """Level-granular schedule recorder shared by both kernels.

    Events are plain tuples appended in execution order; equality of two
    traces means the two executions followed the same public schedule at
    the level granularity (see the module docstring for why that is the
    right oracle for vectorized code).
    """

    def __init__(self):
        self.events: List[tuple] = []

    def record(self, *event) -> None:
        """Append one schedule event (a tuple of public quantities)."""
        self.events.append(tuple(event))

    def __eq__(self, other) -> bool:
        if isinstance(other, KernelTrace):
            return self.events == other.events
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return f"KernelTrace({len(self.events)} events)"


@dataclass
class ScanTable:
    """Structure-of-arrays view of the hash-table slots for the scan kernel.

    One entry per table slot, in slot order: the batch key, an occupancy
    bit (0 for structural filler slots), the request's write and
    permission bits, and the optional write payload.  The subORAM builds
    this once per batch from :class:`~repro.oblivious.hashtable._Slot`
    items; both kernels consume the same view.
    """

    keys: List[int]
    occupied: List[int]
    is_write: List[int]
    permitted: List[int]
    values: List[Optional[bytes]]


class Kernel:
    """Base class for the oblivious kernels.

    A kernel bundles the three data-plane primitives behind one
    interface: lexicographic oblivious ``sort`` over int columns,
    Goodrich ``compact_full``/``compact``, and the Figure 19 ``scan``.
    Instances are stateless and picklable, so they travel with subORAM
    state across process backends.
    """

    #: Registry name ("python" / "numpy").
    name = "abstract"
    #: True when the kernel runs whole-array operations (no mem_factory).
    vectorized = False

    def sort(self, items: Sequence, columns: Sequence[Sequence[int]],
             mem_factory=None, trace: Optional[KernelTrace] = None) -> List:
        """Obliviously sort ``items`` by the int ``columns``, lexicographic."""
        raise NotImplementedError

    def compact_full(self, items: Sequence, flags: Sequence[int],
                     mem_factory=None,
                     trace: Optional[KernelTrace] = None) -> List:
        """Goodrich compaction returning the full ``len(items)`` array."""
        raise NotImplementedError

    def compact(self, items: Sequence, flags: Sequence[int], mem_factory=None,
                trace: Optional[KernelTrace] = None) -> List:
        """Compact and truncate to exactly the ``sum(flags)`` kept items."""
        kept = sum(1 for f in flags if f)
        return self.compact_full(
            items, flags, mem_factory=mem_factory, trace=trace
        )[:kept]

    def scan(self, obj_keys: Sequence[int], obj_values: Sequence[bytes],
             value_size: int, lookup: Sequence[Sequence[int]],
             table: ScanTable,
             trace: Optional[KernelTrace] = None) -> Tuple[list, list, list]:
        """Run the Figure 19 linear scan over every store object.

        ``lookup[o]`` is object ``o``'s fixed row of table-slot indices
        (its two candidate buckets) — a public quantity derived from the
        PRF.  Returns ``(new_obj_values, slot_matched, slot_responses)``:
        the post-scan store values, a 0/1 matched bit per table slot, and
        each slot's response value (the *pre-scan* object value for
        matched slots, the original entry value otherwise).
        """
        raise NotImplementedError


def _pair_key(pair):
    """Sort key for the python kernel's (key_tuple, item) decoration."""
    return pair[0]


def _record_sort(trace: Optional[KernelTrace], n: int, m: int) -> None:
    if trace is None:
        return
    trace.record("sort", n, m)
    for level_index, level in enumerate(bitonic_sort_levels(m)):
        trace.record("sort_level", m, level_index, len(level))


def _record_compact(trace: Optional[KernelTrace], n: int, m: int) -> None:
    if trace is None:
        return
    trace.record("compact", n, m)
    offset = 1
    while offset < m:
        trace.record("compact_level", m, offset)
        offset <<= 1


class PythonKernel(Kernel):
    """The pure-Python reference kernel — the audited oracle.

    Delegates to the original scalar implementations, so its element
    trace (via ``mem_factory``) and its store-access schedule are exactly
    the ones the obliviousness tests and the security simulator audit.
    """

    name = "python"
    vectorized = False

    def sort(self, items, columns, mem_factory=None, trace=None):
        """Sort via the scalar :func:`~repro.oblivious.sort.bitonic_sort`."""
        items = list(items)
        n = len(items)
        m = next_pow2(max(1, n))
        _record_sort(trace, n, m)
        cols = [list(col) for col in columns]
        pairs = [
            (tuple(col[i] for col in cols), items[i]) for i in range(n)
        ]
        ordered = bitonic_sort(pairs, key=_pair_key, mem_factory=mem_factory)
        return [item for _, item in ordered]

    def compact_full(self, items, flags, mem_factory=None, trace=None):
        """Compact via the scalar :func:`~repro.oblivious.compact.goodrich_compact`."""
        _record_compact(trace, len(items), next_pow2(max(1, len(items))))
        return goodrich_compact(items, flags, mem_factory=mem_factory)

    def scan(self, obj_keys, obj_values, value_size, lookup, table,
             trace=None):
        """Scalar Figure 19 scan: two oblivious compare-and-sets per slot."""
        num_slots = len(table.keys)
        if trace is not None:
            trace.record("scan", len(obj_keys), num_slots)
        matched = [0] * num_slots
        responses = list(table.values)
        new_values = list(obj_values)
        for o in range(len(obj_keys)):
            row = list(lookup[o])
            if trace is not None:
                trace.record("scan_slot", o, tuple(row))
            obj_key = obj_keys[o]
            obj_value = new_values[o]
            for t in row:
                if not table.occupied[t]:
                    # Structural filler slot: perform a dummy access so the
                    # touch count per bucket is fixed.
                    _ = o_select(0, obj_value, obj_value)
                    continue
                match = eq_bit(table.keys[t], obj_key)
                matched[t] = o_select(match, matched[t], 1)
                prior = obj_value
                has_value = 0 if table.values[t] is None else 1
                apply_bit = and_bit(
                    match,
                    and_bit(
                        table.is_write[t],
                        and_bit(table.permitted[t], has_value),
                    ),
                )
                obj_value = o_select(
                    apply_bit,
                    obj_value,
                    table.values[t] if table.values[t] is not None else obj_value,
                )
                responses[t] = o_select(match, responses[t], prior)
            new_values[o] = obj_value
        return new_values, matched, responses


# Per-thread kernel scratch.  The singleton kernels are shared by every
# deployment in the process *and* by the thread backend's workers, so the
# epoch-reused arrays live in a thread-local dict (see soa.scratch_array)
# rather than on the kernel instance — which also keeps kernels stateless
# and picklable.
_TLS = threading.local()


def _kernel_scratch() -> dict:
    scratch = getattr(_TLS, "scratch", None)
    if scratch is None:
        scratch = _TLS.scratch = {}
    return scratch


def _perm_template(np, m: int):
    """Cached read-only ``arange(m)`` to copy fresh permutations from."""
    scratch = _kernel_scratch()
    key = ("perm_template", m)
    tmpl = scratch.get(key)
    if tmpl is None:
        tmpl = np.arange(m, dtype=np.int64)
        tmpl.setflags(write=False)
        scratch[key] = tmpl
    return tmpl


def _fresh_perm(np, m: int, name: str):
    """An epoch-reused identity permutation of size ``m``."""
    perm = soa.scratch_array(_kernel_scratch(), name, (m,), np.int64)
    np.copyto(perm, _perm_template(np, m))
    return perm


def _packed_sort_keys(np, m: int, n: int, cols):
    """One int64 sort key per row, or ``None`` when the columns don't fit.

    The lexicographic key ``(pad_bit, col_1, ..., col_k)`` is packed as a
    mixed-radix integer: each column is shifted to start at its minimum
    (a monotone shift preserves per-column order) and assigned just
    enough bits for its range, with the padding bit above all of them.
    Packing is order-isomorphic to the lexicographic compare, so every
    bitonic swap decision is unchanged.  Columns whose combined widths
    exceed an int64 (e.g. load-balancer sorts spanning the negative
    dummy-id space) fall back to the multi-row compare.
    """
    total_bits = 0
    shifted = []
    for col in cols:
        lo = int(col.min()) if n else 0
        span = int(col.max()) - lo if n else 0
        width = max(1, span.bit_length())
        total_bits += width
        if total_bits > 62:
            return None
        shifted.append((col - lo, width))
    packed = soa.scratch_array(_kernel_scratch(), "sort_packed", (m,), np.int64)
    packed.fill(0)
    real = packed[:n]
    for col, width in shifted:
        real <<= width
        real |= col
    packed[n:] = np.int64(1) << total_bits
    return packed


#: Cache of per-size numpy level index arrays: m -> [(i_idx, j_idx, asc)].
_LEVEL_CACHE: dict = {}


def _level_arrays(m: int):
    """Per-level (i, j, ascending) index arrays for a size-``m`` network."""
    cached = _LEVEL_CACHE.get(m)
    if cached is None:
        np = soa.require_numpy()
        cached = []
        for level in bitonic_sort_levels(m):
            i_idx = np.asarray([i for i, _, _ in level], dtype=np.int64)
            j_idx = np.asarray([j for _, j, _ in level], dtype=np.int64)
            asc = np.asarray([a for _, _, a in level], dtype=bool)
            cached.append((i_idx, j_idx, asc))
        _LEVEL_CACHE[m] = cached
    return cached


class NumpyKernel(Kernel):
    """Structure-of-arrays fast path: one masked array op per level.

    Produces byte-identical outputs to :class:`PythonKernel` — the
    property tests in ``tests/test_kernels.py`` enforce this — while
    executing each public schedule level as a single NumPy operation.
    """

    name = "numpy"
    vectorized = True

    def sort(self, items, columns, mem_factory=None, trace=None):
        """Apply each bitonic level as one masked gather/scatter."""
        if mem_factory is not None:
            raise ConfigurationError(
                "mem_factory (element-granular tracing) requires the "
                "python kernel"
            )
        np = soa.require_numpy()
        items = list(items)
        n = len(items)
        m = next_pow2(max(1, n))
        if trace is not None:
            trace.record("sort", n, m)
        if n <= 1:
            if trace is not None:
                for level_index, level in enumerate(bitonic_sort_levels(m)):
                    trace.record("sort_level", m, level_index, len(level))
            return items
        num_cols = len(columns)
        cols = [np.asarray(list(col), dtype=np.int64) for col in columns]
        packed = _packed_sort_keys(np, m, n, cols)
        perm = _fresh_perm(np, m, "sort_perm")
        if packed is not None:
            # All columns fit one int64: compare/swap a single vector per
            # level instead of num_cols + 1 rows.  The packing is order-
            # isomorphic to the lexicographic compare below, so every
            # swap decision — and hence the output — is identical.
            for level_index, (i_idx, j_idx, asc) in enumerate(
                _level_arrays(m)
            ):
                if trace is not None:
                    trace.record("sort_level", m, level_index, int(len(i_idx)))
                swap = (packed[i_idx] > packed[j_idx]) == asc
                ii = i_idx[swap]
                jj = j_idx[swap]
                tmp = packed[ii]
                packed[ii] = packed[jj]
                packed[jj] = tmp
                tmp_p = perm[ii]
                perm[ii] = perm[jj]
                perm[jj] = tmp_p
            return [items[p] for p in perm.tolist() if p < n]
        # Row 0 is the padding bit: real rows sort as (0, cols...), padding
        # as (1, 0, ...), reproducing the scalar path's sentinel ordering.
        keys = soa.scratch_array(
            _kernel_scratch(), "sort_keys", (num_cols + 1, m), np.int64
        )
        keys.fill(0)
        keys[0, n:] = 1
        for c, col in enumerate(cols):
            keys[c + 1, :n] = col
        for level_index, (i_idx, j_idx, asc) in enumerate(_level_arrays(m)):
            if trace is not None:
                trace.record("sort_level", m, level_index, int(len(i_idx)))
            a = keys[:, i_idx]
            b = keys[:, j_idx]
            # Lexicographic a > b across the key rows.
            gt = np.zeros(len(i_idx), dtype=bool)
            eq = np.ones(len(i_idx), dtype=bool)
            for row in range(num_cols + 1):
                gt |= eq & (a[row] > b[row])
                eq &= a[row] == b[row]
            swap = gt == asc
            ii = i_idx[swap]
            jj = j_idx[swap]
            tmp = keys[:, ii].copy()
            keys[:, ii] = keys[:, jj]
            keys[:, jj] = tmp
            tmp_p = perm[ii].copy()
            perm[ii] = perm[jj]
            perm[jj] = tmp_p
        return [items[p] for p in perm.tolist() if p < n]

    def compact_full(self, items, flags, mem_factory=None, trace=None):
        """Apply each Goodrich routing layer as one masked move.

        Within a layer the scalar loop chains left-cell reads (a record
        displaced from a mover position slides down the stride-``offset``
        chain).  The vectorized layer reproduces that exactly from the
        pre-layer state: movers are overwritten by the forward-filled
        chain-head value (the displaced filler), then each mover's record
        — distance decremented — lands ``offset`` slots left, and target
        writes win on conflict.  Flags must be 0/1 bits.
        """
        if mem_factory is not None:
            raise ConfigurationError(
                "mem_factory (element-granular tracing) requires the "
                "python kernel"
            )
        np = soa.require_numpy()
        items = list(items)
        flags = list(flags)
        if len(items) != len(flags):
            raise ValueError(
                f"items ({len(items)}) and flags ({len(flags)}) length mismatch"
            )
        n = len(items)
        m = next_pow2(max(1, n))
        if trace is not None:
            trace.record("compact", n, m)
        if n == 0:
            return []
        scratch = _kernel_scratch()
        flag = soa.scratch_array(scratch, "compact_flag", (m,), bool)
        flag.fill(False)
        flag[:n] = np.asarray([1 if f else 0 for f in flags], dtype=bool)
        rank_excl = soa.scratch_array(scratch, "compact_rank", (m,), np.int64)
        rank_excl[0] = 0
        rank_excl[1:] = np.cumsum(flag.astype(np.int64))[:-1]
        dist = np.where(flag, _perm_template(np, m) - rank_excl, 0)
        perm = _fresh_perm(np, m, "compact_perm")
        offset = 1
        while offset < m:
            if trace is not None:
                trace.record("compact_level", m, offset)
            k = offset.bit_length() - 1
            mover = flag & ((dist >> k) & 1).astype(bool)
            if mover.any():
                rows = m // offset
                pre_f = flag.reshape(rows, offset)
                pre_d = dist.reshape(rows, offset)
                pre_p = perm.reshape(rows, offset)
                mv = mover.reshape(rows, offset)
                row_idx = np.broadcast_to(
                    np.arange(rows, dtype=np.int64)[:, None], mv.shape
                )
                # Forward-fill the most recent non-mover row per column;
                # row 0 is never a mover (distance >= offset implies
                # position >= offset), so the fill never underflows.
                last_nm = np.maximum.accumulate(
                    np.where(mv, np.int64(-1), row_idx), axis=0
                )
                prev_last = np.empty_like(last_nm)
                prev_last[0] = 0
                prev_last[1:] = last_nm[:-1]
                src_rows = np.where(mv, prev_last, row_idx)
                new_f = np.take_along_axis(pre_f, src_rows, axis=0)
                new_d = np.take_along_axis(pre_d, src_rows, axis=0)
                new_p = np.take_along_axis(pre_p, src_rows, axis=0)
                mr, mc = np.nonzero(mv)
                new_f[mr - 1, mc] = pre_f[mr, mc]
                new_d[mr - 1, mc] = pre_d[mr, mc] - offset
                new_p[mr - 1, mc] = pre_p[mr, mc]
                flag = new_f.reshape(m)
                dist = new_d.reshape(m)
                perm = new_p.reshape(m)
            offset <<= 1
        payloads = items + [None] * (m - n)
        return [payloads[p] for p in perm.tolist()][:n]

    def scan(self, obj_keys, obj_values, value_size, lookup, table,
             trace=None):
        """Branchless masked Figure 19 scan across the whole batch dimension.

        Packs the Python-object inputs into SoA columns, delegates to
        :meth:`scan_soa`, and unpacks — the store's batch path skips the
        packing entirely by calling :meth:`scan_soa` with columns that
        came straight out of the contiguous ciphertext buffers.
        """
        np = soa.require_numpy()
        num_objects = len(obj_keys)
        num_slots = len(table.keys)
        if num_objects == 0 or num_slots == 0:
            if trace is not None:
                trace.record("scan", num_objects, num_slots)
                for o in range(num_objects):
                    trace.record("scan_slot", o, tuple(lookup[o]))
            return list(obj_values), [0] * num_slots, list(table.values)
        okeys = soa.int_column(obj_keys)
        ovals, _ = soa.values_to_matrix(list(obj_values), value_size)
        new_ovals, matched, responses = self.scan_soa(
            okeys, ovals, lookup, table, trace=trace
        )
        new_values = soa.matrix_to_values(
            new_ovals, np.ones(num_objects, dtype=bool)
        )
        return new_values, matched, responses

    def scan_soa(self, okeys, ovals, lookup, table, trace=None):
        """Figure 19 scan over pre-packed SoA columns (the zero-copy core).

        ``okeys`` is the int64 store-key column, ``ovals`` the uint8
        value matrix (one row per store object); ``lookup`` is either the
        per-object index rows or an already-packed int64 matrix.  Returns
        ``(new_ovals_matrix, slot_matched, slot_responses)`` with the
        store values left in matrix form so the caller can re-encrypt
        them in one batched pass.  Correct without per-slot sequencing
        because batch keys are distinct and store keys are distinct:
        every object matches at most one slot and every slot at most one
        object, so the masked writes commute with the scalar loop's order.
        """
        np = soa.require_numpy()
        num_objects = int(okeys.shape[0])
        num_slots = len(table.keys)
        if trace is not None:
            trace.record("scan", num_objects, num_slots)
        if isinstance(lookup, np.ndarray):
            look = lookup.astype(np.int64, copy=False)
        else:
            look = np.asarray([list(row) for row in lookup], dtype=np.int64)
        if trace is not None:
            for o in range(num_objects):
                trace.record("scan_slot", o, tuple(int(x) for x in look[o]))
        tkeys = soa.int_column(table.keys)
        tocc = soa.bit_column(table.occupied)
        twrite = soa.bit_column(table.is_write)
        tperm = soa.bit_column(table.permitted)
        value_size = int(ovals.shape[1])
        tvals, thas = soa.values_to_matrix(table.values, value_size)
        match = tocc[look] & (tkeys[look] == okeys[:, None])
        # Write path: the object's new value is the matched write payload.
        write_hit = match & twrite[look] & tperm[look] & thas[look]
        write_any = write_hit.any(axis=1)
        new_ovals = ovals.copy()
        if write_any.any():
            w_obj = np.nonzero(write_any)[0]
            w_slot = look[w_obj, np.argmax(write_hit[w_obj], axis=1)]
            new_ovals[w_obj] = tvals[w_slot]
        # Response path: matched slots capture the *pre-scan* object value.
        match_any = match.any(axis=1)
        matched = np.zeros(num_slots, dtype=np.int64)
        resp_vals = tvals.copy()
        resp_has = thas.copy()
        if match_any.any():
            m_obj = np.nonzero(match_any)[0]
            m_slot = look[m_obj, np.argmax(match[m_obj], axis=1)]
            matched[m_slot] = 1
            resp_vals[m_slot] = ovals[m_obj]
            resp_has[m_slot] = True
        responses = soa.matrix_to_values(resp_vals, resp_has)
        return new_ovals, [int(b) for b in matched], responses


#: Singleton kernel instances, keyed by selector name.
KERNELS = {
    "python": PythonKernel(),
    "numpy": NumpyKernel(),
}

#: The selector used when none is given.
DEFAULT_KERNEL = "python"


def validate_kernel_name(name: str) -> str:
    """Check a kernel selector at configuration time; return it unchanged."""
    if name not in KERNELS:
        raise ConfigurationError(
            f"unknown kernel {name!r}; valid kernels: {sorted(KERNELS)}"
        )
    return name


def resolve_kernel(kernel: Union[str, Kernel, None],
                   mem_factory=None) -> Kernel:
    """Resolve a kernel selector (name, instance, or ``None``) to a kernel.

    ``None`` resolves to the default python kernel.  A ``mem_factory``
    forces the python kernel, since element-granular tracing only exists
    on the scalar path.  Requesting ``"numpy"`` without NumPy installed
    warns and falls back to ``"python"`` rather than failing.
    """
    if mem_factory is not None:
        return KERNELS["python"]
    if kernel is None:
        return KERNELS[DEFAULT_KERNEL]
    if isinstance(kernel, Kernel):
        return kernel
    validate_kernel_name(kernel)
    if kernel == "numpy" and not soa.HAS_NUMPY:
        warnings.warn(
            "NumPy is not installed; falling back to the python kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return KERNELS["python"]
    return KERNELS[kernel]
