"""Oblivious application of an arbitrary permutation: Waksman networks.

An (AS-)Waksman network routes any permutation of ``n`` elements through
``O(n log n)`` binary switches arranged in a fixed topology.  The switch
*control bits* are computed from the secret permutation, but the switch
*positions* depend only on ``n`` — so applying the network is a sequence
of oblivious conditional swaps over fixed index pairs, and an observer
learns nothing about the permutation.

This complements :mod:`repro.oblivious.shuffle` (random permutation via
sort, O(n log^2 n)): Waksman applies a *chosen* permutation in
O(n log n) — the standard tool when an enclave must physically reorder
data it has privately decided how to reorder (e.g. hierarchical ORAM
rebuilds).

Construction (classic recursion): an ``n``-input network is an input
column of ``floor(n/2)`` switches, two parallel subnetworks of sizes
``floor(n/2)`` and ``ceil(n/2)``, and an output column in which the last
switch is fixed (even ``n``) or the last wire bypasses (odd ``n``).
Control bits come from the standard loop-chasing 2-coloring: wires on the
same switch take different subnets, and an element stays in one subnet
between the columns.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.oblivious.primitives import ocmp_swap

SwapInstruction = Tuple[int, int, int]  # (i, j, control bit)


def route_permutation(permutation: Sequence[int]) -> List[SwapInstruction]:
    """Compute the Waksman swap schedule realizing ``permutation``.

    ``output[permutation[i]] = input[i]``.  The (i, j) pairs in the
    returned schedule are a pure function of ``len(permutation)``; the
    control bits carry all secret information.
    """
    permutation = list(permutation)
    if sorted(permutation) != list(range(len(permutation))):
        raise ValueError("not a permutation")
    return _route(permutation)


def _route(perm: List[int]) -> List[SwapInstruction]:
    n = len(perm)
    if n <= 1:
        return []
    if n == 2:
        return [(0, 1, int(perm[0] == 1))]

    half = n // 2
    odd = n % 2 == 1
    bottom_size = n - half
    inverse = [0] * n
    for position, target in enumerate(perm):
        inverse[target] = position

    TOP, BOTTOM = 0, 1
    in_subnet: List = [None] * n
    out_subnet: List = [None] * n

    def bypass_in(position: int) -> bool:
        return odd and position == n - 1

    def bypass_out(position: int) -> bool:
        return odd and position == n - 1

    def propagate(kind: str, position: int, subnet: int) -> None:
        """Assign (kind, position) to subnet and chase all consequences."""
        stack = [(kind, position, subnet)]
        while stack:
            k, pos, s = stack.pop()
            table = in_subnet if k == "in" else out_subnet
            if table[pos] is not None:
                continue
            table[pos] = s
            if k == "in":
                # Same-switch partner goes to the other subnet.
                if not bypass_in(pos):
                    partner = pos ^ 1
                    if partner < n and not bypass_in(partner):
                        stack.append(("in", partner, 1 - s))
                # The element keeps its subnet through the middle.
                stack.append(("out", perm[pos], s))
            else:
                if not bypass_out(pos):
                    partner = pos ^ 1
                    if partner < n and not bypass_out(partner):
                        stack.append(("out", partner, 1 - s))
                stack.append(("in", inverse[pos], s))

    # Seeds: bypass wires (odd n) are wired to the bottom subnet; for even
    # n the last output switch is fixed straight.
    if odd:
        propagate("in", n - 1, BOTTOM)
        propagate("out", n - 1, BOTTOM)
    else:
        propagate("out", n - 2, TOP)
        propagate("out", n - 1, BOTTOM)
    # Free cycles: route through the top by convention.
    for position in range(n):
        if in_subnet[position] is None:
            propagate("in", position, TOP)

    # Switch bits: bit=1 means "swap".  The upper wire (even position)
    # stays on the top subnet / top output exactly when the bit is 0.
    in_bits = [int(in_subnet[2 * k] == BOTTOM) for k in range(half)]
    out_bits = [
        int(out_subnet[2 * k] == BOTTOM)
        for k in range(half if odd else half - 1)
    ]

    # Sub-permutations over subnet wire indices.
    def in_wire(position: int) -> int:
        return bottom_size - 1 if bypass_in(position) else position // 2

    def out_wire(position: int) -> int:
        return bottom_size - 1 if bypass_out(position) else position // 2

    top_perm = [0] * half
    bottom_perm = [0] * bottom_size
    for position in range(n):
        subnet = in_subnet[position]
        src = in_wire(position)
        dst = out_wire(perm[position])
        if subnet == TOP:
            top_perm[src] = dst
        else:
            bottom_perm[src] = dst

    # Physical layout of subnet wires between the columns: top wire w at
    # position 2w, bottom wire w at position 2w+1 (the odd bypass wire is
    # bottom wire bottom_size-1 at position n-1).
    def top_pos(wire: int) -> int:
        return 2 * wire

    def bottom_pos(wire: int) -> int:
        return min(2 * wire + 1, n - 1)

    schedule: List[SwapInstruction] = []
    for k in range(half):
        schedule.append((2 * k, 2 * k + 1, in_bits[k]))
    for i, j, bit in _route(top_perm):
        schedule.append((top_pos(i), top_pos(j), bit))
    for i, j, bit in _route(bottom_perm):
        schedule.append((bottom_pos(i), bottom_pos(j), bit))
    for k in range(len(out_bits)):
        schedule.append((2 * k, 2 * k + 1, out_bits[k]))
    if not odd:
        schedule.append((n - 2, n - 1, 0))  # the fixed Waksman switch
    return schedule


def apply_permutation(items: Sequence, permutation: Sequence[int],
                      mem_factory=None) -> List:
    """Obliviously apply ``permutation``: output[permutation[i]] = items[i].

    Args:
        items: the data to reorder (not modified).
        permutation: target position per input index.
        mem_factory: optional traced-memory wrapper for security tests.
    """
    schedule = route_permutation(permutation)
    work = list(items)
    mem = mem_factory(work) if mem_factory is not None else work
    for i, j, bit in schedule:
        ocmp_swap(mem, bit, i, j)
    return [mem[i] for i in range(len(items))]


def network_size(n: int) -> int:
    """Number of switches a size-``n`` Waksman network uses."""
    return len(route_permutation(list(range(n))))
