"""Oblivious shuffle: a random permutation with a data-independent trace.

Classic construction: tag every element with a PRF of its index under a
fresh key (statistically collision-free for 256-bit tags) and obliviously
sort by the tags.  Since bitonic sort's comparator schedule depends only
on the length, the access trace reveals nothing about the permutation.

Snoopy itself doesn't need a shuffle (it never moves objects between
partitions — that's the point), but the baselines' initialization and
several related systems (hierarchical ORAMs, Signal's hash tables) do,
so the primitive belongs in the toolbox.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.crypto.prf import Prf
from repro.oblivious.sort import bitonic_sort


def oblivious_shuffle(
    items: Sequence,
    key: Optional[bytes] = None,
    mem_factory=None,
) -> List:
    """Return ``items`` in a pseudorandom order via sort-by-PRF-tag.

    Args:
        items: the sequence to permute (not modified).
        key: PRF key; a fresh random key is drawn if omitted.  The
            permutation is a deterministic function of (key, len(items)).
        mem_factory: optional traced-memory wrapper for security tests.
    """
    if key is None:
        key = os.urandom(32)
    prf = Prf(key)
    tagged = [(prf.value(index), item) for index, item in enumerate(items)]
    shuffled = bitonic_sort(tagged, key=lambda t: t[0], mem_factory=mem_factory)
    return [item for _, item in shuffled]


def permutation_of(n: int, key: bytes) -> List[int]:
    """The index permutation ``oblivious_shuffle`` applies for (key, n)."""
    return oblivious_shuffle(list(range(n)), key=key)
