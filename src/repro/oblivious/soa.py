"""Structure-of-arrays codec for the vectorized oblivious kernels.

The NumPy kernels in :mod:`repro.oblivious.kernels` operate on contiguous
arrays instead of Python objects: sort/compaction keys become ``int64``
columns, presence/route/match bits become boolean vectors, and
fixed-width values (the subORAM's ``value_size``-byte objects) become a
``uint8`` matrix with one row per value plus a companion "has" bit that
preserves ``None``.  This module is the boundary where Python objects are
packed into that layout and unpacked back out; everything in between is
whole-array arithmetic.

NumPy is an optional runtime dependency here: the module imports it
guardedly and exposes :data:`HAS_NUMPY` / :func:`require_numpy` so the
kernel registry can fall back to the pure-Python reference path with a
warning instead of crashing when NumPy is absent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised via HAS_NUMPY monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when NumPy imported successfully; the kernel registry consults this
#: to decide whether ``kernel="numpy"`` can be honoured.
HAS_NUMPY = _np is not None


def require_numpy():
    """Return the numpy module or raise a friendly ImportError."""
    if not HAS_NUMPY or _np is None:
        raise ImportError(
            "the 'numpy' kernel requires NumPy (>=1.22); install it or "
            "select kernel='python'"
        )
    return _np


def int_column(values: Sequence[int]):
    """Pack a sequence of Python ints into an ``int64`` array."""
    np = require_numpy()
    return np.asarray(list(values), dtype=np.int64)


def bit_column(values: Sequence[int]):
    """Pack a sequence of 0/1 bits (or truthy values) into a boolean array."""
    np = require_numpy()
    return np.asarray([1 if v else 0 for v in values], dtype=bool)


def values_to_matrix(values: Sequence[Optional[bytes]], value_size: int):
    """Encode fixed-width optional byte strings as ``(matrix, has)``.

    ``matrix`` is a writable ``uint8`` array of shape
    ``(len(values), value_size)``; ``has`` is a boolean vector marking the
    rows that held a real (non-``None``) value.  ``None`` rows are
    all-zero, which is safe because the companion bit — not the byte
    content — is what round-trips absence.
    """
    np = require_numpy()
    n = len(values)
    buf = bytearray(n * value_size)
    has = np.zeros(n, dtype=bool)
    for i, value in enumerate(values):
        if value is None:
            continue
        if len(value) != value_size:
            raise ValueError(
                f"value at row {i} has {len(value)} bytes, expected {value_size}"
            )
        buf[i * value_size : (i + 1) * value_size] = value
        has[i] = True
    matrix = np.frombuffer(bytes(buf), dtype=np.uint8)
    return matrix.reshape(n, value_size).copy(), has


def matrix_to_values(matrix, has) -> List[Optional[bytes]]:
    """Decode a ``(matrix, has)`` pair back into optional byte strings."""
    n, value_size = matrix.shape
    raw = matrix.tobytes()
    return [
        raw[i * value_size : (i + 1) * value_size] if has[i] else None
        for i in range(n)
    ]


def buffer_to_matrix(buf, row_size: int):
    """View a contiguous row-major byte buffer as a writable uint8 matrix.

    The zero-copy complement of :func:`values_to_matrix` used by the
    encrypted store's batch path: N fixed-width rows packed back to back
    become an ``(N, row_size)`` array without per-row byte objects.
    """
    np = require_numpy()
    flat = np.frombuffer(bytes(buf), dtype=np.uint8)
    if row_size <= 0 or flat.size % row_size:
        raise ValueError(
            f"buffer of {flat.size} bytes is not a whole number of "
            f"{row_size}-byte rows"
        )
    return flat.reshape(flat.size // row_size, row_size).copy()


def keys_to_prefix(keys):
    """Encode an int64 key column as (N, 16) big-endian signed bytes.

    Row ``i`` is byte-identical to ``int(keys[i]).to_bytes(16, "big",
    signed=True)`` — the store's scalar plaintext prefix — produced as
    two vectorized int64 lanes (sign-extension high half + value low
    half) instead of N ``to_bytes`` calls.
    """
    np = require_numpy()
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.shape[0]
    out = np.empty((n, 16), dtype=np.uint8)
    hi = np.where(keys < 0, np.int64(-1), np.int64(0))
    out[:, :8] = hi.astype(">i8").view(np.uint8).reshape(n, 8)
    out[:, 8:] = keys.astype(">i8").view(np.uint8).reshape(n, 8)
    return out


def prefix_to_keys(prefix):
    """Decode (N, 16) big-endian signed key prefixes to an int64 column.

    Inverse of :func:`keys_to_prefix`.  Keys beyond the int64 range
    cannot be represented in the SoA layout, so a high half that is not
    the sign extension of the low half raises ``ValueError`` (the scalar
    path should be used for such keys).
    """
    np = require_numpy()
    n = prefix.shape[0]
    hi = (
        np.ascontiguousarray(prefix[:, :8])
        .view(">i8")
        .reshape(n)
        .astype(np.int64)
    )
    lo = (
        np.ascontiguousarray(prefix[:, 8:])
        .view(">i8")
        .reshape(n)
        .astype(np.int64)
    )
    if not np.array_equal(hi, np.where(lo < 0, np.int64(-1), np.int64(0))):
        raise ValueError("key prefix exceeds the int64 SoA key range")
    return lo


def scratch_array(scratch, name: str, shape, dtype):
    """A reusable uninitialized array from a caller-owned scratch dict.

    The hot paths (the vectorized AEAD kernel, the store's batch
    seal/open, the oblivious kernels) run once per epoch over buffers
    whose shapes are fixed functions of the configuration.  Rather than
    allocating those buffers every epoch, callers hold one plain dict
    and pass it here: the array is keyed by ``(name, shape, dtype)`` and
    handed back uninitialized on every later call with the same shape.
    With ``scratch=None`` a fresh array is allocated (one-shot callers,
    tests).  The dict is the owner's responsibility to keep off pickle
    paths and out of shared state — scratch must never cross threads.
    """
    np = require_numpy()
    if scratch is None:
        return np.empty(shape, dtype=dtype)
    key = (name, tuple(shape), np.dtype(dtype).str)
    arr = scratch.get(key)
    if arr is None:
        arr = np.empty(shape, dtype=dtype)
        scratch[key] = arr
    return arr
