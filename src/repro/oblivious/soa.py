"""Structure-of-arrays codec for the vectorized oblivious kernels.

The NumPy kernels in :mod:`repro.oblivious.kernels` operate on contiguous
arrays instead of Python objects: sort/compaction keys become ``int64``
columns, presence/route/match bits become boolean vectors, and
fixed-width values (the subORAM's ``value_size``-byte objects) become a
``uint8`` matrix with one row per value plus a companion "has" bit that
preserves ``None``.  This module is the boundary where Python objects are
packed into that layout and unpacked back out; everything in between is
whole-array arithmetic.

NumPy is an optional runtime dependency here: the module imports it
guardedly and exposes :data:`HAS_NUMPY` / :func:`require_numpy` so the
kernel registry can fall back to the pure-Python reference path with a
warning instead of crashing when NumPy is absent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised via HAS_NUMPY monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when NumPy imported successfully; the kernel registry consults this
#: to decide whether ``kernel="numpy"`` can be honoured.
HAS_NUMPY = _np is not None


def require_numpy():
    """Return the numpy module or raise a friendly ImportError."""
    if not HAS_NUMPY or _np is None:
        raise ImportError(
            "the 'numpy' kernel requires NumPy (>=1.22); install it or "
            "select kernel='python'"
        )
    return _np


def int_column(values: Sequence[int]):
    """Pack a sequence of Python ints into an ``int64`` array."""
    np = require_numpy()
    return np.asarray(list(values), dtype=np.int64)


def bit_column(values: Sequence[int]):
    """Pack a sequence of 0/1 bits (or truthy values) into a boolean array."""
    np = require_numpy()
    return np.asarray([1 if v else 0 for v in values], dtype=bool)


def values_to_matrix(values: Sequence[Optional[bytes]], value_size: int):
    """Encode fixed-width optional byte strings as ``(matrix, has)``.

    ``matrix`` is a writable ``uint8`` array of shape
    ``(len(values), value_size)``; ``has`` is a boolean vector marking the
    rows that held a real (non-``None``) value.  ``None`` rows are
    all-zero, which is safe because the companion bit — not the byte
    content — is what round-trips absence.
    """
    np = require_numpy()
    n = len(values)
    buf = bytearray(n * value_size)
    has = np.zeros(n, dtype=bool)
    for i, value in enumerate(values):
        if value is None:
            continue
        if len(value) != value_size:
            raise ValueError(
                f"value at row {i} has {len(value)} bytes, expected {value_size}"
            )
        buf[i * value_size : (i + 1) * value_size] = value
        has[i] = True
    matrix = np.frombuffer(bytes(buf), dtype=np.uint8)
    return matrix.reshape(n, value_size).copy(), has


def matrix_to_values(matrix, has) -> List[Optional[bytes]]:
    """Decode a ``(matrix, has)`` pair back into optional byte strings."""
    n, value_size = matrix.shape
    raw = matrix.tobytes()
    return [
        raw[i * value_size : (i + 1) * value_size] if has[i] else None
        for i in range(n)
    ]
