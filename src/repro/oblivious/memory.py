"""Instrumented memory recording access patterns.

The abstract enclave model (§2, §B.1) lets the attacker observe which
addresses the enclave touches but not their contents.  ``TracedMemory``
makes that observation concrete: it wraps a Python list and appends
``('R', i)`` / ``('W', i)`` events to a trace for every access.

Obliviousness tests run the same algorithm on different secret inputs with
identical public parameters and assert the traces are *equal* — a direct,
mechanical check of the simulation-based security argument in Appendix B.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

AccessEvent = Tuple[str, int]


class AccessTrace:
    """An append-only log of memory access events."""

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []

    def record(self, op: str, index: int) -> None:
        """Append one access event."""
        self.events.append((op, index))

    def clear(self) -> None:
        """Discard all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessTrace):
            return NotImplemented
        return self.events == other.events

    def __hash__(self):  # traces are mutable; keep them unhashable
        raise TypeError("AccessTrace is unhashable")

    def reads(self) -> List[int]:
        """Indices of all read events, in order."""
        return [i for op, i in self.events if op == "R"]

    def writes(self) -> List[int]:
        """Indices of all write events, in order."""
        return [i for op, i in self.events if op == "W"]

    def __repr__(self) -> str:
        return f"AccessTrace({len(self.events)} events)"


class TracedMemory:
    """A list-like memory whose every element access is logged.

    Algorithms in :mod:`repro.oblivious` accept either a plain list (fast
    path, used in production code paths) or a ``TracedMemory`` (used by
    security tests).  Only integer indexing is allowed — slicing would hide
    individual accesses from the trace.
    """

    def __init__(self, items: Iterable, trace: AccessTrace | None = None):
        self._items: List = list(items)
        self.trace = trace if trace is not None else AccessTrace()

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int):
        if not isinstance(index, int):
            raise TypeError("TracedMemory only supports integer indexing")
        self.trace.record("R", self._normalize(index))
        return self._items[index]

    def __setitem__(self, index: int, value) -> None:
        if not isinstance(index, int):
            raise TypeError("TracedMemory only supports integer indexing")
        self.trace.record("W", self._normalize(index))
        self._items[index] = value

    def _normalize(self, index: int) -> int:
        return index if index >= 0 else len(self._items) + index

    def append(self, value) -> None:
        """Appending extends memory; the new address is public (end of array)."""
        self.trace.record("W", len(self._items))
        self._items.append(value)

    def __iter__(self) -> Iterator:
        for i in range(len(self._items)):
            yield self[i]

    def to_list(self) -> List:
        """Untraced snapshot of contents (test convenience only)."""
        return list(self._items)

    def __repr__(self) -> str:
        return f"TracedMemory(len={len(self._items)}, trace={len(self.trace)} events)"
