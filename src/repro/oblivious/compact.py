"""Goodrich order-preserving oblivious compaction (§4.2.1).

Given ``n`` items each tagged with a bit, compaction moves the tagged items
to a contiguous prefix, preserving their relative order, while revealing
nothing but ``n`` and the number kept.  Goodrich's algorithm routes each
kept item left by ``d_i = i - rank_i`` positions through ``log n`` layers;
layer ``k`` shifts items whose distance has bit ``k`` set by exactly
``2^k``.  Every slot is visited in a fixed order in every layer, so the
address trace depends only on ``n``.

Correctness sketch: kept items' distances are non-decreasing left to right
(consecutive ranks differ by one while positions differ by at least one),
so after processing bits ``0..k-1`` the 2^k-jumps in layer ``k`` always land
on a slot not occupied by a kept item — the conditional swap displaces only
discarded filler.  Property tests in ``tests/test_compact.py`` exercise this
exhaustively for small ``n`` and randomly for large ``n``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.oblivious.primitives import o_select
from repro.utils.bits import next_pow2


def goodrich_compact(items: Sequence, flags: Sequence[int], mem_factory=None) -> List:
    """Obliviously move flagged items to the front, preserving order.

    Args:
        items: the array to compact (not modified).
        flags: 0/1 keep-bits, same length as ``items``.
        mem_factory: optional wrapper (e.g. ``TracedMemory``) for the working
            arrays, letting tests capture the trace.

    Returns:
        A list of length ``len(items)``: the kept items in order, followed
        by the discarded ones in unspecified order.
    """
    if len(items) != len(flags):
        raise ValueError(
            f"items ({len(items)}) and flags ({len(flags)}) length mismatch"
        )
    n = len(items)
    if n == 0:
        return []

    m = next_pow2(n)
    # Work on (flag, distance_remaining, payload) records; padding slots are
    # permanently un-flagged.
    work = [
        [flags[i] if i < n else 0, 0, items[i] if i < n else None]
        for i in range(m)
    ]
    mem = mem_factory(work) if mem_factory is not None else work

    # Fixed linear scan computing each kept item's left-shift distance.
    # rank = number of kept items strictly before position i.
    rank = 0
    for i in range(m):
        record = mem[i]
        flag = record[0]
        distance = i - rank
        # Write the distance unconditionally (0 for dropped items).
        record[1] = o_select(flag, 0, distance)
        mem[i] = record
        rank += flag

    # log m routing layers; layer k conditionally swaps (i - 2^k, i).
    offset = 1
    while offset < m:
        for i in range(offset, m):
            right = mem[i]
            left = mem[i - offset]
            move_bit = right[0] & ((right[1] >> _bit_index(offset)) & 1)
            # Decrement the remaining distance of the moving record.
            moved_right = [
                right[0],
                right[1] - o_select(move_bit, 0, offset),
                right[2],
            ]
            new_left = o_select(move_bit, left, moved_right)
            new_right = o_select(move_bit, right, left)
            mem[i - offset] = new_left
            mem[i] = new_right
        offset <<= 1

    return [mem[i][2] for i in range(n)]


def _bit_index(offset: int) -> int:
    return offset.bit_length() - 1


def ocompact(items: Sequence, flags: Sequence[int], mem_factory=None) -> List:
    """Compact and truncate: return exactly the flagged items, in order.

    The output length equals ``sum(flags)`` — public information, exactly as
    in the paper ("except for the total number of objects kept").
    """
    kept = sum(1 for f in flags if f)
    prefix = goodrich_compact(items, flags, mem_factory=mem_factory)
    return prefix[:kept]


def ocompact_by_sort(items: Sequence, flags: Sequence[int], mem_factory=None) -> List:
    """Order-preserving compaction via oblivious sort — the O(n log^2 n)
    alternative to Goodrich's routing network.

    Sorting by ``(1 - flag, original index)`` moves kept items to a
    stable-ordered prefix.  Slower asymptotically but trivially correct,
    so the test suite uses it as an independent oracle for
    :func:`goodrich_compact`.
    """
    from repro.oblivious.sort import bitonic_sort

    if len(items) != len(flags):
        raise ValueError(
            f"items ({len(items)}) and flags ({len(flags)}) length mismatch"
        )
    tagged = [
        (1 - flags[i], i, items[i]) for i in range(len(items))
    ]
    ordered = bitonic_sort(
        tagged, key=lambda t: (t[0], t[1]), mem_factory=mem_factory
    )
    kept = sum(1 for f in flags if f)
    return [item for _, _, item in ordered[:kept]]
