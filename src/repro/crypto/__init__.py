"""Cryptographic substrate: keyed PRFs, AEAD channels, and digests.

Built entirely on the standard library (``hmac``/``hashlib``) since the
reproduction environment is offline.  The AEAD construction here is an
encrypt-then-MAC scheme over an HMAC-derived keystream; it exists to model
the *system behaviour* of authenticated encrypted channels (nonce handling,
replay rejection, tamper detection), which is what Snoopy's protocol relies
on.
"""

from repro.crypto.keys import KeyChain, random_key
from repro.crypto.prf import Prf, suboram_of
from repro.crypto.aead import AeadKey, SecureChannel
from repro.crypto.vector import (
    CRYPTO_KERNELS,
    VectorAead,
    resolve_crypto_kernel,
)

__all__ = [
    "AeadKey",
    "CRYPTO_KERNELS",
    "KeyChain",
    "Prf",
    "SecureChannel",
    "VectorAead",
    "random_key",
    "resolve_crypto_kernel",
    "suboram_of",
]
