"""Authenticated encryption, batched sealing, and replay-protected channels.

All communication in Snoopy "is encrypted using an authenticated encryption
scheme with a nonce to prevent replay attacks" (§3.1).  This module models
that behaviour with a stdlib-only encrypt-then-MAC AEAD:

* keystream: ``HMAC(key_enc, nonce || counter)`` blocks XORed with plaintext,
* tag: ``HMAC(key_mac, nonce || associated_data || ciphertext)``.

The goal is faithful *system* behaviour — tamper detection, nonce
uniqueness, replay rejection — not a new cipher design.

Batched sealing
===============

The subORAM's write-back scan re-encrypts *every* stored object *every*
epoch (§7): per-slot ``seal``/``open`` calls — each paying a Python-level
per-byte keystream XOR — are the end-to-end bottleneck once the oblivious
kernels are vectorized.  :meth:`AeadKey.seal_batch` and
:meth:`AeadKey.open_batch` seal/open N uniform-size slots in bulk:

* one keystream lane per (nonce, slot): the per-block
  ``HMAC(key_enc, nonce || counter)`` derivations run through a
  pre-keyed HMAC context (C speed, no per-call key schedule),
* the XOR of all N lanes happens as a single whole-buffer pass — a NumPy
  ``bitwise_xor`` over an ``(N, slot_size)`` view when NumPy is present,
  a single big-integer XOR otherwise — never a Python per-byte loop,
* per-slot tags are still derived and verified individually (authenticity
  is per slot), but through the same pre-keyed context.

The batched functions are **byte-identical** to mapping the scalar
``seal``/``open`` over the slots with the same nonces: the scalar path is
the audited oracle and the property tests in ``tests/test_crypto.py``
pin the batch path to it.  Batching changes *throughput only*: every slot
keeps its own unique nonce and every ciphertext keeps the uniform
``plaintext_len + TAG_LEN`` length, which is exactly what keeps the
write-back scan oblivious (see SECURITY.md "Batched crypto is public
information").

Replay protection
=================

:class:`SecureChannel` tracks received nonces with a bounded
high-watermark + sliding-window bitmap (``REPLAY_WINDOW`` messages wide,
one *bit* per in-window message) instead of an unbounded seen-set, so a
long-lived channel's memory stays constant.  Messages older than the
window are rejected as replays — the paper's channels are FIFO transports
where that deep a reordering never happens legitimately.
"""

from __future__ import annotations

import hmac
import hashlib
import itertools
from typing import List, Optional, Sequence

from repro.errors import IntegrityError, ReplayError

try:  # NumPy accelerates the whole-buffer XOR; the big-int path matches it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

_BLOCK = hashlib.sha256().digest_size
NONCE_LEN = 12
TAG_LEN = 32

#: Sliding replay-window width (messages) for :class:`SecureChannel`.
REPLAY_WINDOW = 1024


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    for counter in itertools.count():
        if len(out) >= length:
            break
        block = hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        out.extend(block)
    return bytes(out[:length])


def _xor_buffers(data: bytes, keystream: bytes) -> bytes:
    """XOR two equal-length buffers in one pass (no per-byte Python loop)."""
    if _np is not None:
        a = _np.frombuffer(data, dtype=_np.uint8)
        b = _np.frombuffer(keystream, dtype=_np.uint8)
        return (a ^ b).tobytes()
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(len(data), "big")


class AeadKey:
    """An AEAD key pair (encryption + MAC subkeys) derived from one secret."""

    __slots__ = ("_enc", "_mac", "_enc_base", "_mac_base")

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("AEAD key must be at least 128 bits")
        self._enc = hmac.new(key, b"enc", hashlib.sha256).digest()
        self._mac = hmac.new(key, b"mac", hashlib.sha256).digest()
        self._enc_base = None
        self._mac_base = None

    # Pre-keyed HMAC contexts are not picklable; rebuild them lazily.
    def __getstate__(self) -> tuple:
        return (self._enc, self._mac)

    def __setstate__(self, state: tuple) -> None:
        self._enc, self._mac = state
        self._enc_base = None
        self._mac_base = None

    def _bases(self) -> tuple:
        """Pre-keyed HMAC contexts for the batch path (copy per message).

        ``hmac.new(key, msg)`` re-runs the two-block key schedule on every
        call; ``base.copy().update(msg)`` skips it.  The digests are
        identical — HMAC is deterministic in (key, message) — so the batch
        path stays byte-compatible with the scalar oracle.
        """
        if self._enc_base is None:
            self._enc_base = hmac.new(self._enc, digestmod=hashlib.sha256)
            self._mac_base = hmac.new(self._mac, digestmod=hashlib.sha256)
        return self._enc_base, self._mac_base

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate ``plaintext``; returns ciphertext||tag."""
        if len(nonce) != NONCE_LEN:
            raise ValueError(f"nonce must be {NONCE_LEN} bytes")
        ct = bytes(
            p ^ k for p, k in zip(plaintext, _keystream(self._enc, nonce, len(plaintext)))
        )
        tag = hmac.new(
            self._mac,
            nonce + len(aad).to_bytes(8, "big") + aad + ct,
            hashlib.sha256,
        ).digest()
        return ct + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tamper."""
        if len(sealed) < TAG_LEN:
            raise IntegrityError("ciphertext shorter than tag")
        ct, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
        expect = hmac.new(
            self._mac,
            nonce + len(aad).to_bytes(8, "big") + aad + ct,
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(tag, expect):
            raise IntegrityError("AEAD tag mismatch")
        return bytes(
            c ^ k for c, k in zip(ct, _keystream(self._enc, nonce, len(ct)))
        )

    # ------------------------------------------------------------------
    # Batched sealing (the subORAM write-back scan's bulk path)
    # ------------------------------------------------------------------
    def _keystream_buffer(
        self, nonces: Sequence[bytes], length: int
    ) -> bytes:
        """Concatenated per-lane keystreams, ``length`` bytes per lane.

        Lane ``i`` is byte-identical to ``_keystream(enc, nonces[i],
        length)``; only the HMAC key schedule is hoisted out of the loop.
        """
        enc_base, _ = self._bases()
        blocks = (length + _BLOCK - 1) // _BLOCK
        counters = [c.to_bytes(8, "big") for c in range(blocks)]
        out = bytearray()
        if blocks == 1:
            counter0 = counters[0]
            for nonce in nonces:
                h = enc_base.copy()
                h.update(nonce + counter0)
                out += h.digest()[:length]
        else:
            for nonce in nonces:
                lane = bytearray()
                for counter in counters:
                    h = enc_base.copy()
                    h.update(nonce + counter)
                    lane += h.digest()
                out += lane[:length]
        return bytes(out)

    def seal_batch(
        self,
        nonces: Sequence[bytes],
        plaintexts: Sequence[bytes],
        aads: Optional[Sequence[bytes]] = None,
    ) -> List[bytes]:
        """Seal N uniform-length slots; byte-identical to per-slot ``seal``.

        Args:
            nonces: one ``NONCE_LEN``-byte nonce per slot (must stay
                unique per slot — the caller's obliviousness rests on it).
            plaintexts: equal-length plaintext per slot.
            aads: optional per-slot associated data (default: empty).

        Returns:
            One ``ciphertext || tag`` blob per slot, each exactly
            ``len(plaintext) + TAG_LEN`` bytes (uniform lengths).
        """
        sealed_buf, slot_size = self.seal_batch_buffer(
            nonces, plaintexts, aads
        )
        return [
            bytes(sealed_buf[i * slot_size : (i + 1) * slot_size])
            for i in range(len(nonces))
        ]

    def seal_batch_buffer(
        self,
        nonces: Sequence[bytes],
        plaintexts,
        aads: Optional[Sequence[bytes]] = None,
    ) -> tuple:
        """Bulk ``seal`` into one contiguous buffer; returns ``(buf, slot)``.

        ``plaintexts`` is either a sequence of equal-length byte strings
        or a ``(contiguous_buffer, plain_size)`` pair; the result is a
        ``bytearray`` of N ``ciphertext || tag`` rows plus the row width.
        This is the zero-copy entry point the encrypted store uses so
        slot payloads never round-trip through per-slot byte objects.
        """
        if isinstance(plaintexts, tuple):
            plain_buf, plain_size = plaintexts
            plain_buf = bytes(plain_buf)
            count = len(plain_buf) // plain_size if plain_size else 0
        else:
            plaintexts = list(plaintexts)
            count = len(plaintexts)
            plain_size = len(plaintexts[0]) if count else 0
            for pt in plaintexts:
                if len(pt) != plain_size:
                    raise ValueError(
                        "seal_batch requires uniform plaintext lengths"
                    )
            plain_buf = b"".join(plaintexts)
        nonces = list(nonces)
        if len(nonces) != count:
            raise ValueError(
                f"{len(nonces)} nonces for {count} plaintexts"
            )
        for nonce in nonces:
            if len(nonce) != NONCE_LEN:
                raise ValueError(f"nonce must be {NONCE_LEN} bytes")
        aads = self._check_aads(aads, count)
        slot_size = plain_size + TAG_LEN
        out = bytearray(count * slot_size)
        if count == 0:
            return out, slot_size
        ct_buf = _xor_buffers(
            plain_buf, self._keystream_buffer(nonces, plain_size)
        )
        _, mac_base = self._bases()
        for i in range(count):
            ct = ct_buf[i * plain_size : (i + 1) * plain_size]
            aad = aads[i]
            h = mac_base.copy()
            h.update(nonces[i] + len(aad).to_bytes(8, "big") + aad + ct)
            row = i * slot_size
            out[row : row + plain_size] = ct
            out[row + plain_size : row + slot_size] = h.digest()
        return out, slot_size

    def open_batch(
        self,
        nonces: Sequence[bytes],
        sealed: Sequence[bytes],
        aads: Optional[Sequence[bytes]] = None,
    ) -> List[bytes]:
        """Open N uniform-length slots; byte-identical to per-slot ``open``.

        Every slot's tag is verified (a single tampered slot raises
        :class:`IntegrityError` naming it) before any plaintext is
        returned; decryption of all lanes then runs as one buffer pass.
        """
        sealed = list(sealed)
        count = len(sealed)
        slot_size = len(sealed[0]) if count else TAG_LEN
        for blob in sealed:
            if len(blob) != slot_size:
                raise ValueError(
                    "open_batch requires uniform ciphertext lengths"
                )
        if slot_size < TAG_LEN:
            raise IntegrityError("ciphertext shorter than tag")
        plain_buf, plain_size = self.open_batch_buffer(
            nonces, (b"".join(sealed), slot_size), aads
        )
        return [
            bytes(plain_buf[i * plain_size : (i + 1) * plain_size])
            for i in range(count)
        ]

    def open_batch_buffer(
        self,
        nonces: Sequence[bytes],
        sealed,
        aads: Optional[Sequence[bytes]] = None,
    ) -> tuple:
        """Bulk ``open`` of a contiguous buffer; returns ``(buf, size)``.

        ``sealed`` is a ``(contiguous_buffer, slot_size)`` pair of N
        ``ciphertext || tag`` rows.  Verifies every row's tag first
        (raising :class:`IntegrityError` naming the first bad slot), then
        decrypts all lanes in one whole-buffer XOR pass.
        """
        sealed_buf, slot_size = sealed
        sealed_buf = bytes(sealed_buf)
        if slot_size < TAG_LEN:
            raise IntegrityError("ciphertext shorter than tag")
        count = len(sealed_buf) // slot_size if slot_size else 0
        nonces = list(nonces)
        if len(nonces) != count:
            raise ValueError(f"{len(nonces)} nonces for {count} slots")
        aads = self._check_aads(aads, count)
        plain_size = slot_size - TAG_LEN
        _, mac_base = self._bases()
        cts = []
        for i in range(count):
            row = i * slot_size
            ct = sealed_buf[row : row + plain_size]
            tag = sealed_buf[row + plain_size : row + slot_size]
            aad = aads[i]
            h = mac_base.copy()
            h.update(nonces[i] + len(aad).to_bytes(8, "big") + aad + ct)
            if not hmac.compare_digest(tag, h.digest()):
                raise IntegrityError(f"AEAD tag mismatch in batch slot {i}")
            cts.append(ct)
        if count == 0:
            return bytearray(), plain_size
        plain_buf = _xor_buffers(
            b"".join(cts), self._keystream_buffer(nonces, plain_size)
        )
        return bytearray(plain_buf), plain_size

    @staticmethod
    def _check_aads(aads, count: int) -> Sequence[bytes]:
        if aads is None:
            return [b""] * count
        aads = list(aads)
        if len(aads) != count:
            raise ValueError(f"{len(aads)} aads for {count} slots")
        return aads


class SecureChannel:
    """A replay-protected, authenticated, encrypted message channel.

    Each direction keeps a monotonically increasing send counter used as
    the nonce; the receiver tracks seen nonces with a high-watermark plus
    a :data:`REPLAY_WINDOW`-wide sliding bitmap, so memory stays bounded
    no matter how long the channel lives.  Replays inside the window are
    detected by their bit; anything older than the window is rejected
    outright (the transports these channels ride are FIFO — a message
    ``REPLAY_WINDOW`` sends stale is an attack, not reordering).  This
    mirrors the paper's "authenticated encryption with a nonce to prevent
    replay attacks".
    """

    def __init__(self, key: bytes, name: str = "chan"):
        self._aead = AeadKey(key)
        self._name = name.encode("utf-8")
        self._send_counter = 0
        # Sliding receive window: _recv_hwm is the highest authenticated
        # counter (-1 before any), bit (1 << (hwm - c)) of _recv_window
        # marks counter c as seen.  Both are O(1) memory forever.
        self._recv_hwm = -1
        self._recv_window = 0

    def send(self, plaintext: bytes) -> tuple[bytes, bytes]:
        """Seal ``plaintext``; returns (nonce, ciphertext)."""
        nonce = self._send_counter.to_bytes(NONCE_LEN, "big")
        self._send_counter += 1
        return nonce, self._aead.seal(nonce, plaintext, aad=self._name)

    def receive(self, nonce: bytes, sealed: bytes) -> bytes:
        """Open a message, rejecting replays and tampering."""
        counter = int.from_bytes(nonce, "big")
        if counter <= self._recv_hwm - REPLAY_WINDOW:
            raise ReplayError(
                f"nonce {counter} on {self._name!r} is older than the "
                f"{REPLAY_WINDOW}-message replay window"
            )
        if (
            counter <= self._recv_hwm
            and (self._recv_window >> (self._recv_hwm - counter)) & 1
        ):
            raise ReplayError(f"replayed nonce {counter} on {self._name!r}")
        plaintext = self._aead.open(nonce, sealed, aad=self._name)
        # Only mark the nonce as seen after authentication succeeds, so a
        # forged message cannot block the legitimate one.
        if counter > self._recv_hwm:
            shift = counter - self._recv_hwm
            self._recv_window = (
                ((self._recv_window << shift) | 1)
                & ((1 << REPLAY_WINDOW) - 1)
            )
            self._recv_hwm = counter
        else:
            self._recv_window |= 1 << (self._recv_hwm - counter)
        return plaintext


class SecureChannelPair:
    """One endpoint's view of a full-duplex attested link.

    A link between an initiator (the side that connected: a client or a
    load balancer) and an acceptor (the side that listened: a server or
    a subORAM worker) is two independent :class:`SecureChannel`
    directions keyed off one shared secret.  Direction is bound into
    the AAD (``name/fwd`` = initiator→acceptor, ``name/rev`` = the
    reverse), so a frame reflected back at its sender fails
    authentication instead of decrypting.

    Both endpoints construct the pair from the same ``key`` and
    ``name``; the ``initiator`` flag picks which direction is ``tx``.
    """

    def __init__(self, key: bytes, name: str = "chan", *, initiator: bool):
        fwd = f"{name}/fwd"
        rev = f"{name}/rev"
        self.tx = SecureChannel(key, fwd if initiator else rev)
        self.rx = SecureChannel(key, rev if initiator else fwd)
        self.initiator = initiator


def digest(data: bytes) -> bytes:
    """Content digest used for the out-of-enclave block integrity map (§7)."""
    return hashlib.sha256(data).digest()
