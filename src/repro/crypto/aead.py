"""Authenticated encryption and replay-protected channels.

All communication in Snoopy "is encrypted using an authenticated encryption
scheme with a nonce to prevent replay attacks" (§3.1).  This module models
that behaviour with a stdlib-only encrypt-then-MAC AEAD:

* keystream: ``HMAC(key_enc, nonce || counter)`` blocks XORed with plaintext,
* tag: ``HMAC(key_mac, nonce || associated_data || ciphertext)``.

The goal is faithful *system* behaviour — tamper detection, nonce
uniqueness, replay rejection — not a new cipher design.
"""

from __future__ import annotations

import hmac
import hashlib
import itertools

from repro.errors import IntegrityError, ReplayError

_BLOCK = hashlib.sha256().digest_size
NONCE_LEN = 12
TAG_LEN = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    for counter in itertools.count():
        if len(out) >= length:
            break
        block = hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        out.extend(block)
    return bytes(out[:length])


class AeadKey:
    """An AEAD key pair (encryption + MAC subkeys) derived from one secret."""

    __slots__ = ("_enc", "_mac")

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("AEAD key must be at least 128 bits")
        self._enc = hmac.new(key, b"enc", hashlib.sha256).digest()
        self._mac = hmac.new(key, b"mac", hashlib.sha256).digest()

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate ``plaintext``; returns ciphertext||tag."""
        if len(nonce) != NONCE_LEN:
            raise ValueError(f"nonce must be {NONCE_LEN} bytes")
        ct = bytes(
            p ^ k for p, k in zip(plaintext, _keystream(self._enc, nonce, len(plaintext)))
        )
        tag = hmac.new(
            self._mac,
            nonce + len(aad).to_bytes(8, "big") + aad + ct,
            hashlib.sha256,
        ).digest()
        return ct + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tamper."""
        if len(sealed) < TAG_LEN:
            raise IntegrityError("ciphertext shorter than tag")
        ct, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
        expect = hmac.new(
            self._mac,
            nonce + len(aad).to_bytes(8, "big") + aad + ct,
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(tag, expect):
            raise IntegrityError("AEAD tag mismatch")
        return bytes(
            c ^ k for c, k in zip(ct, _keystream(self._enc, nonce, len(ct)))
        )


class SecureChannel:
    """A replay-protected, authenticated, encrypted message channel.

    Each direction keeps a monotonically increasing send counter used as the
    nonce; the receiver tracks the set of seen nonces and rejects replays.
    This mirrors the paper's "authenticated encryption with a nonce to
    prevent replay attacks".
    """

    def __init__(self, key: bytes, name: str = "chan"):
        self._aead = AeadKey(key)
        self._name = name.encode("utf-8")
        self._send_counter = 0
        self._seen: set[int] = set()

    def send(self, plaintext: bytes) -> tuple[bytes, bytes]:
        """Seal ``plaintext``; returns (nonce, ciphertext)."""
        nonce = self._send_counter.to_bytes(NONCE_LEN, "big")
        self._send_counter += 1
        return nonce, self._aead.seal(nonce, plaintext, aad=self._name)

    def receive(self, nonce: bytes, sealed: bytes) -> bytes:
        """Open a message, rejecting replays and tampering."""
        counter = int.from_bytes(nonce, "big")
        if counter in self._seen:
            raise ReplayError(f"replayed nonce {counter} on {self._name!r}")
        plaintext = self._aead.open(nonce, sealed, aad=self._name)
        # Only mark the nonce as seen after authentication succeeds, so a
        # forged message cannot block the legitimate one.
        self._seen.add(counter)
        return plaintext


def digest(data: bytes) -> bytes:
    """Content digest used for the out-of-enclave block integrity map (§7)."""
    return hashlib.sha256(data).digest()
