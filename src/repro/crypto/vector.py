"""Vectorized counter-mode AEAD: one keystream, one MAC pass per batch.

The HMAC scheme in :mod:`repro.crypto.aead` is the audited per-slot
oracle; its batched entry points still derive one HMAC block per 32
keystream bytes and one HMAC tag per slot — O(slots) Python-level calls
per epoch.  This module is the second *crypto kernel* (mirroring the
oblivious-kernel registry): a counter-mode AEAD whose whole-batch seal
and open run as a fixed number of NumPy passes, independent of slot
count and value size.

Construction
============

Encrypt-then-MAC over a splitmix64 counter keystream and a two-lane
Carter-Wegman polynomial MAC modulo the Mersenne prime ``p = 2^61 - 1``:

* **Keystream.**  One PRF call per batch derives two 64-bit seeds from
  the batch nonce (``Prf(stream_key).digest(nonce || 0x00)``).  Block
  ``b`` of the keystream is ``mix64((s0 + (b+1)*GAMMA) ^ s1)`` — the
  splitmix64 finalizer over a Weyl counter sequence — so the entire
  batch keystream materializes as a single ``uint64`` NumPy array from
  one ``arange``.  Lane ``i`` (a slot) owns the block range
  ``[(lane_base+i)*L, (lane_base+i+1)*L)`` where ``L`` is the per-slot
  word count: distinct lanes under one nonce never share a block, and a
  fresh nonce per batch makes every (key, nonce, block) triple unique —
  the keystream-reuse invariant SECURITY.md states.
* **Tags.**  Per lane, a polynomial MAC over 32-bit message limbs
  ``[lane_hi, lane_lo, aad limbs, ciphertext limbs, len(aad), len(ct)]``
  evaluated at two independent points ``r1, r2`` derived from the key,
  masked by four per-lane pad words from a second nonce-derived seed.
  The limb products reduce mod ``p`` with shift/mask identities
  (``2^64 = 8 mod p``), and the per-lane sums collapse through one
  hi/lo split ``np.sum`` — a fixed number of whole-array operations for
  any batch.  Binding the lane index into the MAC replaces the slot-id
  associated data of the HMAC scheme: a blob spliced to another slot
  fails its tag.  Tags are :data:`TAG_LEN` bytes, so sealed-slot sizes
  match the HMAC kernel exactly and ciphertext lengths stay functions
  of public shape only.

The pure-Python reference (``backend="py"``) computes the same formulas
with exact integer arithmetic; the NumPy path is **bit-identical** to it
(``tests/test_vector_aead.py`` pins this property across sizes, keys,
nonces, and lane bases).  As with the rest of this repo's crypto, the
point is faithful *system* behaviour — tamper/truncation rejection,
nonce discipline, uniform lengths — not a production cipher: splitmix64
is not a vetted PRF and the 2x61-bit Wegman-Carter tag is below a
production security margin (see SECURITY.md).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Union

from repro.crypto.aead import NONCE_LEN, TAG_LEN
from repro.crypto.keys import derive_key
from repro.crypto.prf import Prf
from repro.errors import IntegrityError
from repro.oblivious import soa

__all__ = [
    "CRYPTO_KERNELS",
    "VectorAead",
    "resolve_crypto_kernel",
]

#: The Mersenne prime the polynomial MAC works over.
_P = (1 << 61) - 1
_MASK61 = _P
_MASK29 = (1 << 29) - 1
_MASK64 = (1 << 64) - 1

#: Weyl-sequence increment and splitmix64 finalizer multipliers.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

_U64x4 = struct.Struct(">QQQQ")

#: Store-crypto kernel names (mirrors ``oblivious.kernels.KERNELS``):
#: ``"hmac"`` is the audited per-slot HMAC scheme of
#: :mod:`repro.crypto.aead`; ``"vector"`` is this module.
CRYPTO_KERNELS = ("hmac", "vector")


def resolve_crypto_kernel(name: Optional[str]) -> str:
    """Validate a crypto-kernel selector; ``None`` means ``"hmac"``."""
    if name is None:
        return "hmac"
    if name not in CRYPTO_KERNELS:
        raise ValueError(
            f"unknown crypto kernel {name!r}; valid kernels: "
            f"{list(CRYPTO_KERNELS)}"
        )
    return name


def _mix64(z: int) -> int:
    """The splitmix64 finalizer over one 64-bit word (exact-int path)."""
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def _seed_pair(raw: bytes) -> tuple:
    """Two big-endian uint64 seeds from a 32-byte PRF output."""
    return (
        int.from_bytes(raw[:8], "big"),
        int.from_bytes(raw[8:16], "big"),
    )


def _limbs_of_bytes(data: bytes) -> List[int]:
    """Big-endian 32-bit limbs of ``data`` zero-padded to 4 bytes."""
    pad = (-len(data)) % 4
    if pad:
        data = data + b"\x00" * pad
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]


class VectorAead:
    """Counter-mode AEAD sealing N uniform lanes per call.

    One instance wraps one key.  ``seal_lanes``/``open_lanes`` process a
    whole batch of fixed-size slots under a single nonce;
    ``seal_one``/``open_one`` are the scalar per-slot entry points the
    store's audited oracle path uses (the same scheme, a batch of one,
    at any ``lane``) — so scalar writes interoperate with later batch
    reads and vice versa.

    Args:
        key: AEAD key material (any non-empty byte string).
        backend: ``"numpy"``, ``"py"``, or ``None`` (auto: NumPy when
            available).  Both backends produce bit-identical bytes; the
            property tests enforce it.
    """

    def __init__(self, key: bytes, backend: Optional[str] = None):
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError("AEAD key must be non-empty bytes")
        if backend not in (None, "numpy", "py"):
            raise ValueError(f"unknown VectorAead backend {backend!r}")
        self._key = bytes(key)
        self._backend = backend
        self._setup()

    def _setup(self) -> None:
        self._stream_prf = Prf(derive_key(self._key, "snoopy/vector/stream"))
        poly = derive_key(self._key, "snoopy/vector/poly")
        # Evaluation points in [1, p-1]: zero would void the whole MAC.
        self._r1 = (int.from_bytes(poly[:8], "big") % (_P - 1)) + 1
        self._r2 = (int.from_bytes(poly[8:16], "big") % (_P - 1)) + 1
        #: (r, width) -> (hi_arr, lo_arr, int powers) power-table cache.
        self._powers: dict = {}
        #: Fresh-keystream derivations (one per sealed batch/lane group).
        self.keystream_derivations = 0

    # Pre-keyed contexts, power tables, and scratch don't cross pickles.
    def __getstate__(self):
        return (self._key, self._backend)

    def __setstate__(self, state) -> None:
        self._key, self._backend = state
        self._setup()

    @property
    def backend(self) -> str:
        """The backend lanes actually run on (``"numpy"`` or ``"py"``)."""
        if self._backend is not None:
            return self._backend
        return "numpy" if soa.HAS_NUMPY else "py"

    # ------------------------------------------------------------------
    # Per-message derivations (shared by both backends)
    # ------------------------------------------------------------------
    def _message_seeds(self, nonce: bytes) -> tuple:
        if len(nonce) != NONCE_LEN:
            raise ValueError(f"nonce must be {NONCE_LEN} bytes")
        ks = _seed_pair(self._stream_prf.digest(nonce + b"\x00"))
        ts = _seed_pair(self._stream_prf.digest(nonce + b"\x01"))
        self.keystream_derivations += 1
        return ks, ts

    def _power_table(self, r: int, width: int):
        """Cached ``[r^width, ..., r^1] mod p`` (ints + uint64 hi/lo)."""
        cached = self._powers.get((r, width))
        if cached is None:
            powers = [0] * width
            acc = 1
            for j in range(width):
                acc = (acc * r) % _P
                powers[width - 1 - j] = acc
            if soa.HAS_NUMPY:
                np = soa.require_numpy()
                arr = np.asarray(powers, dtype=np.uint64)
                hi = arr >> np.uint64(32)
                lo = arr & np.uint64(0xFFFFFFFF)
            else:  # pragma: no cover - numpy-less envs use ints only
                hi = lo = None
            cached = (hi, lo, powers)
            self._powers[(r, width)] = cached
        return cached

    @staticmethod
    def _limb_width(plain_size: int, aad_len: int) -> int:
        return 2 + (aad_len + 3) // 4 + (plain_size + 3) // 4 + 2

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def seal_lanes(
        self,
        nonce: bytes,
        plain,
        count: int,
        plain_size: int,
        *,
        lane_base: int = 0,
        aad: bytes = b"",
        out=None,
        scratch: Optional[dict] = None,
    ):
        """Seal ``count`` uniform lanes under one nonce.

        ``plain`` is either a buffer of ``count * plain_size`` bytes or a
        ``(count, plain_size)`` uint8 NumPy matrix.  Returns the sealed
        buffer of ``count * (plain_size + TAG_LEN)`` bytes — written into
        ``out`` (a writable buffer of exactly that size) when given, so
        epoch write-backs land straight in the host blob buffer with no
        intermediate copy.  ``scratch`` is an optional dict of reusable
        arrays (see :func:`repro.oblivious.soa.scratch_array`) that the
        kernel keys by shape — pass the same dict every epoch to skip
        allocation churn.
        """
        if count < 0 or plain_size <= 0:
            raise ValueError("count must be >= 0 and plain_size positive")
        if count == 0:
            return out if out is not None else b""
        if self.backend == "numpy":
            return self._seal_np(
                nonce, plain, count, plain_size, lane_base, aad, out, scratch
            )
        return self._seal_py(
            nonce, plain, count, plain_size, lane_base, aad, out
        )

    def open_lanes(
        self,
        nonce: bytes,
        sealed,
        count: int,
        plain_size: int,
        *,
        lane_base: int = 0,
        aad: bytes = b"",
        scratch: Optional[dict] = None,
        as_matrix: bool = False,
    ):
        """Authenticate and decrypt ``count`` lanes sealed under ``nonce``.

        Verifies every lane's tag before releasing any plaintext; raises
        :class:`~repro.errors.IntegrityError` naming the first failing
        lane on any tamper, splice, or truncation.  Returns the plaintext
        as bytes, or as a ``(count, plain_size)`` uint8 matrix with
        ``as_matrix=True`` (NumPy backend only).
        """
        if count < 0 or plain_size <= 0:
            raise ValueError("count must be >= 0 and plain_size positive")
        slot_size = plain_size + TAG_LEN
        view = memoryview(sealed)
        if len(view) != count * slot_size:
            raise IntegrityError(
                f"sealed buffer is {len(view)} bytes; expected "
                f"{count * slot_size} ({count} lanes of {slot_size})"
            )
        if count == 0:
            if as_matrix:
                np = soa.require_numpy()
                return np.empty((0, plain_size), dtype=np.uint8)
            return b""
        if self.backend == "numpy":
            return self._open_np(
                nonce, view, count, plain_size, lane_base, aad,
                scratch, as_matrix,
            )
        if as_matrix:
            raise ValueError("as_matrix requires the numpy backend")
        return self._open_py(nonce, view, count, plain_size, lane_base, aad)

    def seal_one(
        self, nonce: bytes, plaintext: bytes, *,
        lane: int = 0, aad: bytes = b"",
    ) -> bytes:
        """Seal a single lane (the scalar oracle for this scheme)."""
        return bytes(
            self.seal_lanes(
                nonce, plaintext, 1, len(plaintext),
                lane_base=lane, aad=aad,
            )
        )

    def open_one(
        self, nonce: bytes, blob: bytes, *,
        lane: int = 0, aad: bytes = b"",
    ) -> bytes:
        """Open a single lane; raises IntegrityError on any tampering."""
        if len(blob) < TAG_LEN + 1:
            raise IntegrityError(
                f"lane {lane} ciphertext is truncated ({len(blob)} bytes)"
            )
        return bytes(
            self.open_lanes(
                nonce, blob, 1, len(blob) - TAG_LEN,
                lane_base=lane, aad=aad,
            )
        )

    # ------------------------------------------------------------------
    # Pure-Python reference (exact integer arithmetic)
    # ------------------------------------------------------------------
    def _lane_tag_py(
        self, ts: tuple, lane: int, ct: bytes, aad: bytes, plain_size: int
    ) -> bytes:
        limbs = (
            [(lane >> 32) & 0xFFFFFFFF, lane & 0xFFFFFFFF]
            + _limbs_of_bytes(aad)
            + _limbs_of_bytes(ct)
            + [len(aad), plain_size]
        )
        width = len(limbs)
        _, _, pw1 = self._power_table(self._r1, width)
        _, _, pw2 = self._power_table(self._r2, width)
        t1 = sum(m * w for m, w in zip(limbs, pw1)) % _P
        t2 = sum(m * w for m, w in zip(limbs, pw2)) % _P
        ts0, ts1 = ts
        masks = [
            _mix64(((ts0 + (((lane * 4 + k + 1) * _GAMMA) & _MASK64))
                    & _MASK64) ^ ts1)
            for k in range(4)
        ]
        return _U64x4.pack(
            (t1 + (masks[0] & _MASK61)) % _P,
            (t2 + (masks[1] & _MASK61)) % _P,
            masks[2],
            masks[3],
        )

    def _keystream_py(self, ks: tuple, lane: int, plain_size: int) -> bytes:
        ks0, ks1 = ks
        words_per_lane = (plain_size + 7) // 8
        base = lane * words_per_lane
        out = bytearray()
        for j in range(words_per_lane):
            b = base + j
            z = ((ks0 + (((b + 1) * _GAMMA) & _MASK64)) & _MASK64) ^ ks1
            out += _mix64(z).to_bytes(8, "big")
        return bytes(out[:plain_size])

    def _seal_py(
        self, nonce, plain, count, plain_size, lane_base, aad, out
    ):
        ks, ts = self._message_seeds(nonce)
        if hasattr(plain, "tobytes") and not isinstance(
            plain, (bytes, bytearray, memoryview)
        ):  # ndarray input on the py backend
            view = memoryview(plain.tobytes())
        else:
            view = memoryview(plain)
        if len(view) != count * plain_size:
            raise ValueError(
                f"plaintext buffer is {len(view)} bytes; expected "
                f"{count * plain_size}"
            )
        slot_size = plain_size + TAG_LEN
        result = bytearray(count * slot_size)
        for i in range(count):
            lane = lane_base + i
            p = bytes(view[i * plain_size : (i + 1) * plain_size])
            stream = self._keystream_py(ks, lane, plain_size)
            ct = bytes(a ^ b for a, b in zip(p, stream))
            tag = self._lane_tag_py(ts, lane, ct, aad, plain_size)
            result[i * slot_size : i * slot_size + plain_size] = ct
            result[i * slot_size + plain_size : (i + 1) * slot_size] = tag
        if out is not None:
            memoryview(out)[:] = result
            return out
        return bytes(result)

    def _open_py(self, nonce, view, count, plain_size, lane_base, aad):
        ks, ts = self._message_seeds(nonce)
        slot_size = plain_size + TAG_LEN
        plains = bytearray(count * plain_size)
        for i in range(count):
            lane = lane_base + i
            blob = bytes(view[i * slot_size : (i + 1) * slot_size])
            ct, tag = blob[:plain_size], blob[plain_size:]
            expect = self._lane_tag_py(ts, lane, ct, aad, plain_size)
            if expect != tag:
                raise IntegrityError(f"lane {lane} failed authentication")
            stream = self._keystream_py(ks, lane, plain_size)
            plains[i * plain_size : (i + 1) * plain_size] = bytes(
                a ^ b for a, b in zip(ct, stream)
            )
        return bytes(plains)

    # ------------------------------------------------------------------
    # NumPy kernel (O(1) array passes per batch)
    # ------------------------------------------------------------------
    @staticmethod
    def _mix64_np(np, z):
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        return z ^ (z >> np.uint64(31))

    @staticmethod
    def _mod_p_np(np, x):
        """Reduce ``x < 2^64`` mod p: two folds + one conditional subtract."""
        m = np.uint64(_MASK61)
        x = (x & m) + (x >> np.uint64(61))
        x = (x & m) + (x >> np.uint64(61))
        return np.where(x >= np.uint64(_P), x - np.uint64(_P), x)

    def _keystream_np(
        self, np, ks, count, plain_size, lane_base, scratch
    ):
        """The whole batch keystream as a ``(count, L*8)`` uint8 matrix."""
        ks0, ks1 = ks
        words_per_lane = (plain_size + 7) // 8
        total = count * words_per_lane
        # The Weyl ramp (j+1)*GAMMA depends only on the batch shape;
        # cache it across epochs and shift by the per-nonce offset.
        key = ("vec_weyl", total)
        ramp = None if scratch is None else scratch.get(key)
        if ramp is None:
            ramp = np.arange(1, total + 1, dtype=np.uint64) * np.uint64(
                _GAMMA
            )
            if scratch is not None:
                scratch[key] = ramp
        offset = np.uint64(
            (ks0 + lane_base * words_per_lane * _GAMMA) & _MASK64
        )
        words = self._mix64_np(np, (ramp + offset) ^ np.uint64(ks1))
        return (
            words.astype(">u8")
            .view(np.uint8)
            .reshape(count, words_per_lane * 8)
        )

    def _lane_tags_np(
        self, np, ts, count, plain_size, lane_base, aad, ct_matrix, scratch
    ):
        """All lane tags as a ``(count, TAG_LEN)`` uint8 matrix."""
        ts0, ts1 = ts
        aad_limbs = _limbs_of_bytes(aad)
        width = self._limb_width(plain_size, len(aad))
        limbs = soa.scratch_array(
            scratch, "vec_limbs", (count, width), np.uint64
        )
        lanes = np.arange(
            lane_base, lane_base + count, dtype=np.uint64
        )
        limbs[:, 0] = lanes >> np.uint64(32)
        limbs[:, 1] = lanes & np.uint64(0xFFFFFFFF)
        col = 2
        if aad_limbs:
            limbs[:, col : col + len(aad_limbs)] = np.asarray(
                aad_limbs, dtype=np.uint64
            )
            col += len(aad_limbs)
        # Ciphertext limbs: one memcpy into a contiguous padded scratch
        # row, then a single big-endian-u32 -> uint64 conversion pass —
        # no per-limb shifts, no (N, limbs, 4) intermediate.
        pad = (-plain_size) % 4
        padded = soa.scratch_array(
            scratch, "vec_ct_pad", (count, plain_size + pad), np.uint8
        )
        padded[:, :plain_size] = ct_matrix
        if pad:
            padded[:, plain_size:] = 0
        quads = padded.view(np.dtype(">u4"))
        ct_limb_count = quads.shape[1]
        limbs[:, col : col + ct_limb_count] = quads
        limbs[:, -2] = np.uint64(len(aad))
        limbs[:, -1] = np.uint64(plain_size)

        # Reused whole-matrix temporaries: the polynomial pass below is
        # pure in-place arithmetic over these three (count, width)
        # buffers — zero allocation on the epoch path.
        t = soa.scratch_array(scratch, "vec_t", (count, width), np.uint64)
        acc = soa.scratch_array(
            scratch, "vec_acc", (count, width), np.uint64
        )
        u = soa.scratch_array(scratch, "vec_u", (count, width), np.uint64)

        def poly(r):
            hi, lo, _ = self._power_table(r, width)
            # m * r^k mod p via 32-bit splits: every intermediate stays
            # exact in uint64 (bounds: m < 2^32, hi < 2^29, lo < 2^32).
            # acc accumulates c1 + c2 < 2^63, congruent to m * r^k.
            np.multiply(limbs, hi, out=t)
            np.right_shift(t, np.uint64(29), out=acc)
            np.bitwise_and(t, np.uint64(_MASK29), out=t)
            np.left_shift(t, np.uint64(32), out=t)
            np.add(acc, t, out=acc)
            np.multiply(limbs, lo, out=t)
            np.right_shift(t, np.uint64(61), out=u)
            np.bitwise_and(t, np.uint64(_MASK61), out=t)
            np.add(acc, t, out=acc)
            np.add(acc, u, out=acc)
            np.bitwise_and(acc, np.uint64(0xFFFFFFFF), out=t)
            s_lo = t.sum(axis=1)
            np.right_shift(acc, np.uint64(32), out=t)
            s_hi = self._mod_p_np(np, t.sum(axis=1))
            total = (
                (s_hi >> np.uint64(29))
                + ((s_hi & np.uint64(_MASK29)) << np.uint64(32))
                + s_lo
            )
            return self._mod_p_np(np, total)

        t1 = poly(self._r1)
        t2 = poly(self._r2)
        idx = lanes[:, None] * np.uint64(4) + np.arange(
            1, 5, dtype=np.uint64
        )
        masks = self._mix64_np(
            np,
            (np.uint64(ts0) + idx * np.uint64(_GAMMA)) ^ np.uint64(ts1),
        )
        tag_words = soa.scratch_array(
            scratch, "vec_tagwords", (count, 4), np.uint64
        )
        tag_words[:, 0] = self._mod_p_np(
            np, t1 + (masks[:, 0] & np.uint64(_MASK61))
        )
        tag_words[:, 1] = self._mod_p_np(
            np, t2 + (masks[:, 1] & np.uint64(_MASK61))
        )
        tag_words[:, 2] = masks[:, 2]
        tag_words[:, 3] = masks[:, 3]
        return tag_words.astype(">u8").view(np.uint8).reshape(count, TAG_LEN)

    @staticmethod
    def _as_plain_matrix(np, plain, count, plain_size):
        if isinstance(plain, np.ndarray):
            if plain.shape != (count, plain_size) or plain.dtype != np.uint8:
                raise ValueError(
                    f"plaintext matrix must be uint8 of shape "
                    f"({count}, {plain_size}), got {plain.dtype} "
                    f"{plain.shape}"
                )
            return plain
        view = memoryview(plain)
        if len(view) != count * plain_size:
            raise ValueError(
                f"plaintext buffer is {len(view)} bytes; expected "
                f"{count * plain_size}"
            )
        return np.frombuffer(view, dtype=np.uint8).reshape(count, plain_size)

    def _seal_np(
        self, nonce, plain, count, plain_size, lane_base, aad, out, scratch
    ):
        np = soa.require_numpy()
        ks, ts = self._message_seeds(nonce)
        matrix = self._as_plain_matrix(np, plain, count, plain_size)
        slot_size = plain_size + TAG_LEN
        if out is not None:
            blobs = np.frombuffer(memoryview(out), dtype=np.uint8)
            if blobs.size != count * slot_size:
                raise ValueError(
                    f"out buffer is {blobs.size} bytes; expected "
                    f"{count * slot_size}"
                )
            blobs = blobs.reshape(count, slot_size)
        else:
            blobs = np.empty((count, slot_size), dtype=np.uint8)
        stream = self._keystream_np(
            np, ks, count, plain_size, lane_base, scratch
        )
        np.bitwise_xor(
            matrix, stream[:, :plain_size], out=blobs[:, :plain_size]
        )
        blobs[:, plain_size:] = self._lane_tags_np(
            np, ts, count, plain_size, lane_base, aad,
            blobs[:, :plain_size], scratch,
        )
        if out is not None:
            return out
        return blobs.tobytes()

    def _open_np(
        self, nonce, view, count, plain_size, lane_base, aad,
        scratch, as_matrix,
    ):
        np = soa.require_numpy()
        ks, ts = self._message_seeds(nonce)
        slot_size = plain_size + TAG_LEN
        blobs = np.frombuffer(view, dtype=np.uint8).reshape(count, slot_size)
        ct = blobs[:, :plain_size]
        tags = blobs[:, plain_size:]
        expect = self._lane_tags_np(
            np, ts, count, plain_size, lane_base, aad, ct, scratch
        )
        ok = (tags == expect).all(axis=1)
        if not bool(ok.all()):
            bad = int(np.argmin(ok))
            raise IntegrityError(
                f"lane {lane_base + bad} failed authentication"
            )
        stream = self._keystream_np(
            np, ks, count, plain_size, lane_base, scratch
        )
        plain = soa.scratch_array(
            scratch, "vec_plain", (count, plain_size), np.uint8
        )
        np.bitwise_xor(ct, stream[:, :plain_size], out=plain)
        if as_matrix:
            return plain
        return plain.tobytes()
