"""Keyed pseudorandom function used for sharding and oblivious hashing.

The paper assigns objects to subORAMs with a keyed cryptographic hash whose
key the attacker does not know (§4.1), and assigns batch requests to hash
buckets with a per-batch key (§5).  Both are instances of a PRF mapping an
integer id to a bounded range, implemented here with HMAC-SHA256.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import List, Sequence


class Prf:
    """HMAC-SHA256 PRF with convenience range reduction.

    Range reduction uses the full 256-bit output modulo ``n``; the modulo
    bias is below 2^-190 for any realistic ``n`` and is irrelevant for the
    balls-into-bins analysis.

    Evaluations go through a pre-keyed HMAC context (``copy()`` per
    message skips the per-call key schedule); outputs are identical to
    ``hmac.new(key, message)`` — HMAC is deterministic in (key, message).
    The bulk path (:meth:`range_many`) drops to raw pre-padded SHA-256
    contexts (the inner/outer construction HMAC is defined as), which
    skips the ``hmac`` module's per-call Python wrapper objects while
    producing the exact same digests.
    """

    __slots__ = ("_key", "_base", "_inner", "_outer")

    _BLOCK = 64  # SHA-256 block size: the HMAC pad width.

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError("PRF key must be non-empty bytes")
        self._key = bytes(key)
        self._base = None
        self._inner = None
        self._outer = None

    # Pre-keyed HMAC/SHA-256 contexts are not picklable; rebuild lazily.
    def __getstate__(self) -> bytes:
        return self._key

    def __setstate__(self, state: bytes) -> None:
        self._key = state
        self._base = None
        self._inner = None
        self._outer = None

    def _pads(self):
        """Pre-padded inner/outer SHA-256 contexts (RFC 2104)."""
        if self._inner is None:
            key = self._key
            if len(key) > self._BLOCK:
                key = hashlib.sha256(key).digest()
            key = key.ljust(self._BLOCK, b"\x00")
            self._inner = hashlib.sha256(bytes(b ^ 0x36 for b in key))
            self._outer = hashlib.sha256(bytes(b ^ 0x5C for b in key))
        return self._inner, self._outer

    def digest(self, message: bytes) -> bytes:
        """Raw 32-byte PRF output for a byte-string input."""
        if self._base is None:
            self._base = hmac.new(self._key, digestmod=hashlib.sha256)
        h = self._base.copy()
        h.update(message)
        return h.digest()

    def value(self, x: int) -> int:
        """PRF output for integer input, as a 256-bit integer."""
        encoded = x.to_bytes(16, "big", signed=True)
        return int.from_bytes(self.digest(encoded), "big")

    def range(self, x: int, n: int) -> int:
        """PRF output for ``x`` reduced into ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"range size must be positive, got {n}")
        return self.value(x) % n

    def range_many(self, xs: Sequence[int], n: int) -> List[int]:
        """Batched :meth:`range` over a key column (same outputs).

        One inner/outer SHA-256 copy pair per element over pre-padded
        key contexts — byte-for-byte the HMAC construction, minus the
        ``hmac`` module's per-call wrapper — with the loop overhead
        hoisted.  This is the bulk-lookup path for the oblivious hash
        table's per-object bucket derivation.
        """
        if n <= 0:
            raise ValueError(f"range size must be positive, got {n}")
        inner, outer = self._pads()
        inner_copy, outer_copy = inner.copy, outer.copy
        from_bytes = int.from_bytes
        out = []
        for x in xs:
            h = inner_copy()
            h.update(int(x).to_bytes(16, "big", signed=True))
            o = outer_copy()
            o.update(h.digest())
            out.append(from_bytes(o.digest(), "big") % n)
        return out


def suboram_of(key: bytes, object_id: int, num_suborams: int) -> int:
    """The subORAM owning ``object_id`` under sharding key ``key`` (§4.1)."""
    return Prf(key).range(object_id, num_suborams)
