"""Keyed pseudorandom function used for sharding and oblivious hashing.

The paper assigns objects to subORAMs with a keyed cryptographic hash whose
key the attacker does not know (§4.1), and assigns batch requests to hash
buckets with a per-batch key (§5).  Both are instances of a PRF mapping an
integer id to a bounded range, implemented here with HMAC-SHA256.
"""

from __future__ import annotations

import hmac
import hashlib


class Prf:
    """HMAC-SHA256 PRF with convenience range reduction.

    Range reduction uses the full 256-bit output modulo ``n``; the modulo
    bias is below 2^-190 for any realistic ``n`` and is irrelevant for the
    balls-into-bins analysis.
    """

    __slots__ = ("_key",)

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError("PRF key must be non-empty bytes")
        self._key = bytes(key)

    def digest(self, message: bytes) -> bytes:
        """Raw 32-byte PRF output for a byte-string input."""
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def value(self, x: int) -> int:
        """PRF output for integer input, as a 256-bit integer."""
        encoded = x.to_bytes(16, "big", signed=True)
        return int.from_bytes(self.digest(encoded), "big")

    def range(self, x: int, n: int) -> int:
        """PRF output for ``x`` reduced into ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"range size must be positive, got {n}")
        return self.value(x) % n


def suboram_of(key: bytes, object_id: int, num_suborams: int) -> int:
    """The subORAM owning ``object_id`` under sharding key ``key`` (§4.1)."""
    return Prf(key).range(object_id, num_suborams)
