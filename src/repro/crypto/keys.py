"""Key generation and the per-deployment key chain.

Snoopy derives several independent keys from one master secret: the sharding
PRF key (stable across epochs, §4.1), the per-batch hash-table key (fresh for
every subORAM batch, §5), and channel keys for each enclave pair.  We use
HKDF-style expansion with HMAC-SHA256.
"""

from __future__ import annotations

import hmac
import hashlib
import os

KEY_LEN = 32


def random_key(rng=None) -> bytes:
    """Sample a fresh 256-bit key.

    Args:
        rng: optional ``random.Random`` for deterministic tests; defaults to
            the OS CSPRNG.
    """
    if rng is None:
        return os.urandom(KEY_LEN)
    return bytes(rng.getrandbits(8) for _ in range(KEY_LEN))


def derive_key(master: bytes, label: str) -> bytes:
    """Derive an independent subkey from ``master`` for the given label."""
    return hmac.new(master, label.encode("utf-8"), hashlib.sha256).digest()


class KeyChain:
    """Holds the deployment master secret and hands out labelled subkeys.

    The chain caches derivations so repeated lookups are cheap and stable.
    """

    def __init__(self, master: bytes | None = None, rng=None):
        self._master = master if master is not None else random_key(rng)
        self._cache: dict[str, bytes] = {}

    @property
    def master(self) -> bytes:
        """The deployment master secret."""
        return self._master

    def subkey(self, label: str) -> bytes:
        """Return the subkey for ``label``, deriving it on first use."""
        if label not in self._cache:
            self._cache[label] = derive_key(self._master, label)
        return self._cache[label]

    def sharding_key(self) -> bytes:
        """The keyed-hash key mapping object ids to subORAMs (fixed, §4.1)."""
        return self.subkey("snoopy/sharding")

    def channel_key(self, a: str, b: str) -> bytes:
        """Pairwise channel key between named parties (order-independent)."""
        lo, hi = sorted((a, b))
        return self.subkey(f"snoopy/channel/{lo}/{hi}")

    def batch_key(self, suboram: int, epoch: int) -> bytes:
        """Fresh hash-table key for one subORAM batch (resampled per batch, §5)."""
        return self.subkey(f"snoopy/batch/{suboram}/{epoch}")
