"""The Appendix B simulator programs, executable.

The paper's security definition (Definition 1) demands a *simulator*
that, given only public information — request count, configuration,
data size — produces a trace indistinguishable from the real protocol's.
Figures 22/24/26 define those simulators: they run the same oblivious
pipeline on *random* requests of the right shape.

This module implements them literally, and the test suite plays the
distinguisher: `tests/test_simulator.py` asserts the simulated traces
are *equal* (not merely indistinguishable) to real-execution traces,
which is exactly how the paper's proofs argue (the access pattern is a
deterministic function of public parameters).
"""

from __future__ import annotations

from typing import List

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.types import OpType, Request


class _Collector:
    """mem_factory accumulating every access onto one trace."""

    def __init__(self) -> None:
        self.trace = AccessTrace()

    def __call__(self, items):
        return TracedMemory(items, trace=self.trace)


def _random_style_requests(num_requests: int) -> List[Request]:
    """SimLoadBalancer's step: "choose N random distinct identifiers...
    create R of the form (read, idx_i, bot)" (Figure 26, lines 3-4).

    Determinism note: since the real trace provably does not depend on
    *which* identifiers are chosen, the simulator may fix them; we use
    consecutive ids, which keeps the test equality exact.
    """
    return [
        Request(OpType.READ, 1_000_000 + index, seq=index)
        for index in range(num_requests)
    ]


def simulate_batching_trace(
    num_requests: int,
    num_suborams: int,
    sharding_key: bytes,
    security_parameter: int = 128,
) -> AccessTrace:
    """Figure 26 (first half): the batch-generation trace from public info.

    Public inputs: R, S, lambda (the sharding key is enclave-internal and
    shared with the real execution; the *trace* is key-independent, which
    ``tests/test_obliviousness.py`` checks separately).
    """
    collector = _Collector()
    generate_batches(
        _random_style_requests(num_requests),
        num_suborams,
        sharding_key,
        security_parameter,
        mem_factory=collector,
    )
    return collector.trace


def simulate_matching_trace(
    num_requests: int,
    num_suborams: int,
    sharding_key: bytes,
    security_parameter: int = 128,
) -> AccessTrace:
    """Figure 26 (second half): the response-matching trace."""
    requests = _random_style_requests(num_requests)
    batches, originals, _ = generate_batches(
        requests, num_suborams, sharding_key, security_parameter
    )
    responses = []
    for batch in batches:
        for entry in batch:
            answered = entry.copy()
            answered.value = b""  # contents are irrelevant to the trace
            responses.append(answered)
    collector = _Collector()
    match_responses(originals, responses, mem_factory=collector)
    return collector.trace


def simulate_suboram_store_sequence(
    num_objects: int, kernel: str = "python"
) -> List[tuple]:
    """Figure 20's scan: the subORAM's (get, put) slot sequence.

    Both kernels' store schedules are public functions of ``num_objects``
    alone, so the simulator just enumerates them.  The scalar python
    kernel interleaves: it fetches and rewrites each slot in turn.  The
    vectorized numpy kernel reads every slot ``0..N-1``, runs the whole
    scan as masked array operations, then rewrites every slot in the same
    order — a get-phase followed by a put-phase.
    """
    sequence: List[tuple] = []
    if kernel == "numpy":
        for slot in range(num_objects):
            sequence.append(("get", slot))
        for slot in range(num_objects):
            sequence.append(("put", slot))
        return sequence
    for slot in range(num_objects):
        sequence.append(("get", slot))
        sequence.append(("put", slot))
    return sequence
