"""Executable security arguments: the Appendix B simulator programs."""

from repro.security.simulator import (
    simulate_batching_trace,
    simulate_matching_trace,
    simulate_suboram_store_sequence,
)

__all__ = [
    "simulate_batching_trace",
    "simulate_matching_trace",
    "simulate_suboram_store_sequence",
]
