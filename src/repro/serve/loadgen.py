"""Asyncio load generator for the Snoopy front door.

Drives a live :class:`~repro.serve.server.SnoopyServer` over real TCP
with a fleet of connections, each keeping a fixed window of requests in
flight — the closed-loop-per-connection / open-loop-in-aggregate shape
the paper's throughput experiments use (§8: saturate the epoch batches,
then measure sustained throughput and the latency the batching costs).

Connections are sessionless on purpose (the server buffers nothing for
them) and speak whichever channel the server requires: pass ``trust``
to run the attested handshake and sealed framing — the configuration
``BENCH_serve.json`` now records, with the plaintext mode kept as the
overhead baseline.

The generator measures from the client side of the wire: a request's
latency is first-byte-sent to response-frame-decoded, so it includes
framing, the attested channel's AEAD work, the kernel socket path,
epoch queueing, and the oblivious batch itself.  Results feed
``BENCH_serve.json`` via the bench harness and the
``python -m repro loadgen`` CLI.

Request streams come from :mod:`repro.workloads`: pass ``workload`` (a
:class:`~repro.workloads.WorkloadSpec` or CLI shorthand like
``zipf:1.2``) to drive a seeded generator, ``trace_in`` to replay a
recorded trace over the wire, and ``trace_out`` to record what was
actually sent — with arrival timestamps — as a replayable trace file.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Union

from repro.core.wire import (
    FrameKind,
    Role,
    WireError,
    decode_response,
    decode_u32,
    encode_request,
)
from repro.errors import ServerBusyError, ServerShuttingDownError
from repro.serve.secure import (
    AsyncFrameTransport,
    ServeTrust,
    secure_handshake_async,
)
from repro.types import OpType, Request
from repro.workloads.generators import (
    WorkloadSpec,
    generate_requests,
    parse_workload_spec,
)
from repro.workloads.trace import Trace, TraceRecord, dump_trace, load_trace


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 for an empty list)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _fit_value(value: Optional[bytes], value_size: int) -> bytes:
    """Resize a scripted value to the server's value size (pad/truncate)."""
    return (value or b"").ljust(value_size, b"\x00")[:value_size]


async def _run_connection(
    host: str,
    port: int,
    *,
    requests: int,
    window: int,
    num_keys: int,
    write_fraction: float,
    rng: random.Random,
    client_id: int,
    latencies: List[float],
    trust: Optional[ServeTrust] = None,
    script: Optional[List[Request]] = None,
    record: Optional[List[TraceRecord]] = None,
    t0: float = 0.0,
) -> int:
    """One connection's closed loop; returns responses received.

    With ``script`` the connection sends those requests in order
    (scripted values are padded/truncated to the server's value size);
    otherwise it draws uniform keys from ``rng`` as before.  With
    ``record`` every request actually sent is appended as a
    :class:`TraceRecord` stamped relative to ``t0``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    transport: Optional[AsyncFrameTransport] = None
    try:
        _version, _role, pair = await secure_handshake_async(
            reader, writer, Role.CLIENT,
            trust=trust, attested=trust is not None,
            expected_roles=(Role.SERVER,),
        )
        transport = AsyncFrameTransport(reader, writer, pair)
        kind, payload = await transport.recv()
        if kind == FrameKind.ERROR:
            raise WireError(payload.decode("utf-8", "replace"))
        if kind != FrameKind.INIT:
            raise WireError(f"expected INIT, got frame kind {kind}")
        value_size = decode_u32(payload[:4])

        sent_at: Dict[int, float] = {}
        completed = 0
        next_req = 0

        def send_one() -> None:
            nonlocal next_req
            req_id = next_req
            next_req += 1
            if script is not None:
                template = script[req_id]
                request = Request(
                    op=template.op,
                    key=template.key,
                    value=(
                        _fit_value(template.value, value_size)
                        if template.is_write() else None
                    ),
                    client_id=template.client_id or client_id,
                    seq=req_id,
                )
            elif rng.random() < write_fraction:
                request = Request(
                    op=OpType.WRITE,
                    key=rng.randrange(num_keys),
                    value=rng.getrandbits(8 * value_size).to_bytes(
                        value_size, "big"
                    ),
                    client_id=client_id,
                    seq=req_id,
                )
            else:
                request = Request(
                    op=OpType.READ,
                    key=rng.randrange(num_keys),
                    client_id=client_id,
                    seq=req_id,
                )
            now = time.monotonic()
            sent_at[req_id] = now
            if record is not None:
                record.append(TraceRecord.from_request(request, now - t0))
            transport.send(
                FrameKind.REQUEST,
                encode_request(req_id, request, value_size),
            )

        # Prime the window, then keep it full: every response frees a
        # slot that is immediately refilled until the quota is sent.
        for _ in range(min(window, requests)):
            send_one()
        await transport.drain()

        while completed < requests:
            kind, payload = await transport.recv()
            if kind == FrameKind.ERROR:
                raise WireError(payload.decode("utf-8", "replace"))
            if kind == FrameKind.BUSY:
                raise ServerBusyError(
                    "server shed load mid-benchmark; lower the window"
                )
            if kind == FrameKind.SHUTTING_DOWN:
                raise ServerShuttingDownError(
                    "server drained mid-benchmark"
                )
            if kind != FrameKind.RESPONSE:
                raise WireError(f"unexpected frame kind {kind}")
            req_id, _response, _coords, _seq = decode_response(
                payload, value_size
            )
            latencies.append(time.monotonic() - sent_at.pop(req_id))
            completed += 1
            if next_req < requests:
                send_one()
                await transport.drain()
        return completed
    finally:
        if transport is not None:
            transport.close()
        else:
            writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_loadgen_async(
    host: str,
    port: int,
    *,
    requests: int = 10_000,
    connections: int = 4,
    window: int = 256,
    num_keys: int = 1024,
    write_fraction: float = 0.5,
    seed: int = 0,
    trust=None,
    workload: Optional[Union[str, WorkloadSpec]] = None,
    trace_in: Optional[Union[str, Trace]] = None,
    trace_out: Optional[str] = None,
) -> Dict[str, object]:
    """Drive the server with ``requests`` total operations; return stats.

    The quota is split evenly across ``connections``, each running the
    closed window loop above concurrently on one event loop.  The
    aggregate open-ticket count is ``connections * window`` — the knob
    the 100K-open-ticket soak turns up.  ``trust`` (a
    :class:`~repro.serve.secure.ServeTrust` or raw secret bytes)
    switches every connection to the attested sealed channel.

    ``workload`` swaps the inline uniform stream for a seeded
    :mod:`repro.workloads` generator (spec object or shorthand such as
    ``"zipf:1.2"``); ``trace_in`` replays a recorded trace (path or
    :class:`Trace`), round-robined across connections, overriding
    ``requests``; ``trace_out`` records every request actually sent —
    with client-side send timestamps — as a replayable trace file.
    """
    if isinstance(trust, (bytes, bytearray)):
        trust = ServeTrust(bytes(trust))
    spec: Optional[WorkloadSpec] = None
    scripts: Optional[List[List[Request]]] = None
    if trace_in is not None:
        trace = load_trace(trace_in) if isinstance(trace_in, str) else trace_in
        replayed = trace.requests()
        scripts = [replayed[index::connections] for index in range(connections)]
        spec = trace.spec
    elif workload is not None:
        spec = (
            parse_workload_spec(
                workload, num_keys=num_keys, write_fraction=write_fraction,
            )
            if isinstance(workload, str) else workload
        )
        per_connection = max(1, requests // connections)
        scripts = [
            generate_requests(spec, per_connection, seed * 7919 + index)
            for index in range(connections)
        ]
    per_connection = max(1, requests // connections)
    latencies: List[float] = []
    record: Optional[List[TraceRecord]] = [] if trace_out else None
    started = time.monotonic()
    totals = await asyncio.gather(*[
        _run_connection(
            host, port,
            requests=len(scripts[index]) if scripts else per_connection,
            window=window,
            num_keys=num_keys,
            write_fraction=write_fraction,
            rng=random.Random(seed * 7919 + index),
            client_id=1000 + index,
            latencies=latencies,
            trust=trust,
            script=scripts[index] if scripts else None,
            record=record,
            t0=started,
        )
        for index in range(connections)
    ])
    elapsed = time.monotonic() - started
    total = sum(totals)
    stats: Dict[str, object] = {
        "requests": total,
        "connections": connections,
        "window": window,
        "open_tickets": connections * window,
        "write_fraction": write_fraction,
        "attested": trust is not None,
        "elapsed_s": elapsed,
        "rps": total / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": percentile(latencies, 0.50) * 1e3,
        "latency_p99_ms": percentile(latencies, 0.99) * 1e3,
        "latency_mean_ms": (
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
        ),
    }
    if spec is not None:
        stats["workload"] = spec.to_dict()
    if trace_in is not None:
        stats["replayed_trace"] = trace.checksum()
    if record is not None:
        recorded = Trace(
            records=sorted(record, key=lambda r: (r.t, r.client_id, r.seq)),
            spec=spec,
            seed=seed,
            meta={"source": "loadgen", "connections": connections,
                  "window": window},
        )
        stats["trace_out"] = trace_out
        stats["trace_checksum"] = dump_trace(recorded, trace_out)
    return stats


def run_loadgen(host: str, port: int, **kwargs) -> Dict[str, object]:
    """Blocking wrapper around :func:`run_loadgen_async`."""
    return asyncio.run(run_loadgen_async(host, port, **kwargs))
