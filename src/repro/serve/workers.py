"""Out-of-process subORAM workers and their balancer-side proxies.

The paper's deployment runs each subORAM on its own machine; this module
reproduces that boundary with real OS processes and TCP sockets while
keeping the epoch driver unchanged: a :class:`RemoteSubOram` is a
duck-typed subORAM (``initialize`` / ``batch_access`` / ``num_objects``)
whose method calls are framed round trips to a :func:`worker_main`
process owning the real :class:`~repro.suboram.suboram.SubOram`.

**Atomic epochs across the process boundary.**  The epoch driver's
atomicity seam is ``copy.deepcopy`` of the subORAM list before each
attempt; :class:`RemoteSubOram` turns that deepcopy into a versioned
transaction: ``__deepcopy__`` allocates a fresh version id and sends
``TXN_BEGIN(parent, new)`` — the worker clones its ``parent`` state as
``new``, *commits* ``parent`` (seals it to disk, drops superseded
versions), and the returned proxy addresses ``new``.  A failed attempt
simply abandons its version: the retry deep-copies the pristine proxies
again, beginning a fresh clone of the same committed parent.

**Crash recovery.**  The worker seals its live version table (pickle +
atomic rename) at initialization, at every transaction boundary, and
after every batch, so a worker killed at *any* point is respawned by
:class:`WorkerCluster` with every version id the balancer might still
reference — in particular the pre-epoch parent a retried attempt clones
from.  Mid-flight socket failures surface as
:class:`~repro.errors.TransportError`, the retryable fault class, so
the existing :class:`~repro.core.resilience.EpochRetryController` and
:class:`~repro.core.pipeline.EpochPipeline` machinery recovers (or, with
retries disabled, rolls the epoch back and requeues its requests)
without any serve-specific code.

Remote proxies hold live sockets, so deployments using them must run on
a shared-state execution backend (``serial`` or ``thread``) — the same
constraint the driver already enforces for custom transports.

**What crosses this wire.**  INIT and BATCH payloads reuse
:func:`~repro.core.wire.encode_batch`, so message sizes depend only on
partition/batch sizes and the value size — public quantities.  Version
ids and commit points are epoch-schedule facts, also public.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import shutil
import socket
import tempfile
import threading
from typing import Dict, List, Optional

from repro.core.wire import (
    FrameKind,
    Role,
    WireError,
    decode_batch,
    decode_txn,
    decode_u32,
    encode_batch,
    encode_txn,
    encode_u32,
    encode_u64,
    decode_u64,
)
from repro.errors import ConfigurationError, TransportError
from repro.serve.protocol import handshake, recv_frame, send_frame
from repro.telemetry import NULL_TELEMETRY, resolve_telemetry
from repro.types import BatchEntry, OpType


def _seal(snapshot_path: str, versions: Dict[int, object]) -> None:
    """Persist the live version table: pickle then atomic rename.

    Sealing the *whole* table (committed parent and working clone) after
    every mutation means any version id the balancer can still reference
    — the pre-epoch parent during a retried attempt, or a freshly
    installed version the next epoch has not yet committed — survives a
    crash.  Sealing only commit points would lose an installed version
    that crashes before its commit-by-next-transaction.
    """
    tmp_path = snapshot_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        pickle.dump(versions, handle)
    os.replace(tmp_path, snapshot_path)


def _load_seal(snapshot_path: str) -> Dict[int, object]:
    """Load the sealed version table, or an empty one."""
    if not os.path.exists(snapshot_path):
        return {}
    with open(snapshot_path, "rb") as handle:
        return pickle.load(handle)


def worker_main(
    worker_id: int,
    value_size: int,
    security_parameter: int,
    kernel: Optional[str],
    port_pipe,
    snapshot_path: str,
    crash_after: Optional[int] = None,
    crypto: str = "batched",
) -> None:
    """One subORAM worker process: accept, handshake, serve frames.

    Single-threaded by design — a subORAM's batches execute in fixed
    balancer order anyway, so one connection at a time is the natural
    concurrency.  When the balancer's connection drops the worker loops
    back to ``accept`` and waits for a reconnect; its versioned state
    survives in memory (and the committed version on disk).

    ``crash_after`` is the deterministic chaos seam: after serving that
    many BATCH frames the process exits *after applying and sealing*
    the batch but *before replying* — the worst-case crash point, where
    the balancer cannot know whether the batch landed and must retry
    the epoch on a fresh clone of the committed parent.
    """
    from repro.suboram.suboram import SubOram

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port_pipe.send(listener.getsockname()[1])
    port_pipe.close()

    versions: Dict[int, object] = _load_seal(snapshot_path)
    batches_served = 0

    while True:
        conn, _ = listener.accept()
        try:
            handshake(conn, Role.WORKER)
            while True:
                kind, payload = recv_frame(conn)
                if kind == FrameKind.INIT:
                    suboram = SubOram(
                        worker_id,
                        value_size,
                        security_parameter=security_parameter,
                        kernel=kernel,
                        crypto=crypto,
                    )
                    suboram.initialize({
                        entry.key: entry.value
                        for entry in decode_batch(payload)
                    })
                    versions = {0: suboram}
                    _seal(snapshot_path, versions)
                    send_frame(
                        conn, FrameKind.INIT_ACK,
                        encode_u32(suboram.num_objects),
                    )
                elif kind == FrameKind.BATCH:
                    version = decode_u64(payload[:8])
                    if version not in versions:
                        raise WireError(
                            f"worker {worker_id} has no state "
                            f"version {version}"
                        )
                    entries = versions[version].batch_access(
                        decode_batch(payload[8:])
                    )
                    _seal(snapshot_path, versions)
                    batches_served += 1
                    if crash_after is not None and batches_served >= crash_after:
                        os._exit(1)  # chaos: die with the reply unsent
                    send_frame(
                        conn, FrameKind.BATCH_REPLY, encode_batch(entries)
                    )
                elif kind == FrameKind.TXN_BEGIN:
                    parent, new = decode_txn(payload)
                    if parent not in versions:
                        raise WireError(
                            f"worker {worker_id} has no state "
                            f"version {parent} to clone"
                        )
                    committed_suboram = versions[parent]
                    # parent is now the committed state; superseded
                    # versions are dropped.
                    versions = {
                        parent: committed_suboram,
                        new: copy.deepcopy(committed_suboram),
                    }
                    _seal(snapshot_path, versions)
                    send_frame(conn, FrameKind.TXN_ACK)
                elif kind == FrameKind.PING:
                    send_frame(conn, FrameKind.PONG)
                else:
                    raise WireError(f"unexpected worker frame kind {kind}")
        except TransportError:
            pass  # balancer went away; await a reconnect
        except Exception as exc:
            # Protocol or application bug (bad frame, capacity abort):
            # report it — non-retryable on the balancer side — and drop
            # the connection, but keep the worker and its state alive.
            try:
                send_frame(
                    conn, FrameKind.ERROR,
                    f"{type(exc).__name__}: {exc}".encode("utf-8"),
                )
            except TransportError:
                pass
        finally:
            conn.close()


class RemoteSubOram:
    """Balancer-side proxy for one worker's subORAM (duck-typed).

    The epoch driver cannot tell this apart from an in-process
    :class:`~repro.suboram.suboram.SubOram`: ``initialize``,
    ``batch_access`` and ``num_objects`` have identical contracts, and
    ``copy.deepcopy`` (the driver's atomicity seam) becomes the
    ``TXN_BEGIN`` transaction described in the module docstring.
    """

    def __init__(self, cluster: "WorkerCluster", index: int, version: int = 0,
                 num_objects: int = 0):
        self._cluster = cluster
        self._index = index
        self._version = version
        self._num_objects = num_objects
        #: Telemetry seam (attach_telemetry_to_suborams attaches here).
        self.telemetry = NULL_TELEMETRY

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Ship this partition to the worker and load it there."""
        payload = encode_batch([
            BatchEntry(op=OpType.WRITE, key=key, value=value, is_dummy=False)
            for key, value in sorted(objects.items())
        ])
        ack = self._cluster.request(
            self._index, FrameKind.INIT, payload, FrameKind.INIT_ACK
        )
        self._version = 0
        self._num_objects = decode_u32(ack)

    def batch_access(self, batch: List[BatchEntry]) -> List[BatchEntry]:
        """One framed batch round trip against this proxy's version."""
        with self.telemetry.time(
            "serve_worker_batch_seconds", unit=self._index
        ):
            reply = self._cluster.request(
                self._index,
                FrameKind.BATCH,
                encode_u64(self._version) + encode_batch(batch),
                FrameKind.BATCH_REPLY,
            )
        return decode_batch(reply)

    @property
    def num_objects(self) -> int:
        """Partition size reported by the worker at initialization."""
        return self._num_objects

    def __deepcopy__(self, memo) -> "RemoteSubOram":
        """The atomicity seam: begin a worker-side transaction.

        Called by the epoch driver before each atomic attempt.  The
        worker clones this proxy's version under a fresh id (committing
        the parent as a side effect); the clone proxy addresses the new
        version, so a failed attempt's mutations are confined to a
        version nobody references afterwards.
        """
        new_version = self._cluster.next_version()
        self._cluster.request(
            self._index,
            FrameKind.TXN_BEGIN,
            encode_txn(self._version, new_version),
            FrameKind.TXN_ACK,
        )
        clone = RemoteSubOram(
            self._cluster, self._index, new_version, self._num_objects
        )
        clone.telemetry = self.telemetry
        memo[id(self)] = clone
        return clone

    def __repr__(self) -> str:
        return (
            f"RemoteSubOram(index={self._index}, version={self._version}, "
            f"objects={self._num_objects})"
        )


class WorkerCluster:
    """Supervisor for S subORAM worker processes.

    Spawns the workers, owns one blocking socket per worker, respawns
    crashed workers from their sealed snapshots, and hands out
    :class:`RemoteSubOram` proxies through :meth:`factory` — a drop-in
    ``suboram_factory`` for :class:`~repro.core.snoopy.Snoopy`::

        cluster = WorkerCluster(num_workers=3, value_size=16).start()
        store = Snoopy(config, suboram_factory=cluster.factory)

    Thread-safety: one lock per worker serializes that worker's framed
    round trips (the thread backend may drive distinct workers
    concurrently, which uses distinct sockets and locks).
    """

    def __init__(
        self,
        num_workers: int,
        value_size: int,
        security_parameter: int = 128,
        kernel: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        telemetry=None,
        crash_plan: Optional[Dict[int, int]] = None,
        crypto: str = "batched",
    ):
        self.num_workers = num_workers
        self.value_size = value_size
        self.security_parameter = security_parameter
        self.kernel = kernel
        self.crypto = crypto
        self.telemetry = resolve_telemetry(telemetry)
        self._owns_snapshot_dir = snapshot_dir is None
        self._snapshot_dir = (
            snapshot_dir
            if snapshot_dir is not None
            else tempfile.mkdtemp(prefix="snoopy-workers-")
        )
        self._context = multiprocessing.get_context()
        self._procs: List[Optional[multiprocessing.Process]] = (
            [None] * num_workers
        )
        self._ports: List[Optional[int]] = [None] * num_workers
        self._socks: List[Optional[socket.socket]] = [None] * num_workers
        self._locks = [threading.Lock() for _ in range(num_workers)]
        self._version_lock = threading.Lock()
        self._next_version = 1
        self._started = False
        # Deterministic chaos: worker index -> crash after N batches.
        # Consumed at first spawn only, so the respawned worker is sane.
        self._crash_plan = dict(crash_plan or {})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerCluster":
        """Spawn every worker process and connect to it."""
        if self._started:
            raise ConfigurationError("worker cluster already started")
        self._started = True
        for index in range(self.num_workers):
            self._spawn(index)
            self._connect(index)
        return self

    def stop(self) -> None:
        """Terminate the workers and remove owned snapshots; idempotent."""
        for index in range(self.num_workers):
            self._close_socket(index)
            proc = self._procs[index]
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            self._procs[index] = None
        if self._owns_snapshot_dir:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
        self._started = False

    def __enter__(self) -> "WorkerCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Proxies
    # ------------------------------------------------------------------
    def factory(self, suboram_id: int, config=None, keychain=None):
        """``suboram_factory`` seam: a proxy for worker ``suboram_id``.

        The ``config``/``keychain`` arguments exist to match the factory
        signature; partition keys never leave the balancer side, and the
        worker encrypts its store under its own process-local keys.
        """
        if not 0 <= suboram_id < self.num_workers:
            raise ConfigurationError(
                f"subORAM index {suboram_id} outside this cluster's "
                f"{self.num_workers} workers"
            )
        if config is not None and config.value_size != self.value_size:
            raise ConfigurationError(
                f"deployment value_size {config.value_size} != cluster "
                f"value_size {self.value_size}"
            )
        return RemoteSubOram(self, suboram_id)

    def next_version(self) -> int:
        """Allocate a cluster-unique state-version id."""
        with self._version_lock:
            version = self._next_version
            self._next_version += 1
            return version

    # ------------------------------------------------------------------
    # Worker channel
    # ------------------------------------------------------------------
    def request(
        self, index: int, kind: int, payload: bytes, expect_kind: int
    ) -> bytes:
        """One framed round trip to worker ``index``; returns the reply payload.

        Respawns a dead worker (from its sealed snapshot) and reconnects
        a dropped channel *before* sending, so recovery is transparent;
        a failure *during* the round trip — the crash-mid-batch case —
        closes the channel and raises :class:`TransportError`, leaving
        recovery to the caller's retry (which lands back here).
        """
        with self._locks[index]:
            self._ensure(index)
            sock = self._socks[index]
            try:
                send_frame(sock, kind, payload)
                reply_kind, reply = recv_frame(sock)
            except TransportError as exc:
                self._close_socket(index)
                exc.unit = index
                raise
            if reply_kind == FrameKind.ERROR:
                self._close_socket(index)
                raise WireError(
                    f"worker {index}: " + reply.decode("utf-8", "replace")
                )
            if reply_kind != expect_kind:
                raise WireError(
                    f"worker {index} replied frame kind {reply_kind}, "
                    f"expected {expect_kind}"
                )
            return reply

    def ping(self, index: int) -> bool:
        """Liveness probe; returns False instead of raising on a dead worker."""
        try:
            self.request(index, FrameKind.PING, b"", FrameKind.PONG)
            return True
        except TransportError:
            return False

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker process (chaos testing)."""
        proc = self._procs[index]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5)
        self._close_socket(index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot_path(self, index: int) -> str:
        return os.path.join(self._snapshot_dir, f"worker-{index}.seal")

    def _spawn(self, index: int) -> None:
        parent_pipe, child_pipe = self._context.Pipe(duplex=False)
        proc = self._context.Process(
            target=worker_main,
            args=(
                index,
                self.value_size,
                self.security_parameter,
                self.kernel,
                child_pipe,
                self._snapshot_path(index),
                self._crash_plan.pop(index, None),
                self.crypto,
            ),
            daemon=True,
            name=f"snoopy-worker-{index}",
        )
        proc.start()
        child_pipe.close()
        try:
            self._ports[index] = parent_pipe.recv()
        except EOFError as exc:
            raise TransportError(
                f"worker {index} died before binding its port"
            ) from exc
        finally:
            parent_pipe.close()
        self._procs[index] = proc

    def _connect(self, index: int) -> None:
        try:
            sock = socket.create_connection(
                ("127.0.0.1", self._ports[index]), timeout=30
            )
        except OSError as exc:
            raise TransportError(
                f"worker {index} connect failed: {exc}"
            ) from exc
        sock.settimeout(None)
        try:
            handshake(sock, Role.BALANCER)
        except BaseException:
            sock.close()
            raise
        self._socks[index] = sock

    def _close_socket(self, index: int) -> None:
        sock = self._socks[index]
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._socks[index] = None

    def _ensure(self, index: int) -> None:
        """Respawn/reconnect worker ``index`` if its channel is down.

        Must succeed transparently whenever recovery is possible at all:
        the epoch driver's ``deepcopy`` seam calls into here *outside*
        its fault-wrapping, so an exception from this path is fatal
        rather than retryable.  The loop absorbs the race where a worker
        that just died still reports ``is_alive()`` (connect is refused,
        the join lets it be reaped, the next pass respawns it).
        """
        failure: Optional[TransportError] = None
        for _ in range(5):
            proc = self._procs[index]
            if proc is None or not proc.is_alive():
                self._close_socket(index)
                self._spawn(index)
                self.telemetry.counter("serve_worker_respawns_total").inc()
            if self._socks[index] is not None:
                return
            try:
                self._connect(index)
                return
            except TransportError as exc:
                failure = exc
                proc = self._procs[index]
                if proc is not None:
                    proc.join(timeout=0.2)
        failure.unit = index
        raise failure
