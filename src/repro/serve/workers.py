"""Out-of-process subORAM workers and their balancer-side proxies.

The paper's deployment runs each subORAM on its own machine; this module
reproduces that boundary with real OS processes and TCP sockets while
keeping the epoch driver unchanged: a :class:`RemoteSubOram` is a
duck-typed subORAM (``initialize`` / ``batch_access`` / ``num_objects``)
whose method calls are framed round trips to a :func:`worker_main`
process owning the real :class:`~repro.suboram.suboram.SubOram`.

**Attested channels.**  With a trust secret configured (the default
when a :class:`~repro.serve.secure.ServeTrust` is handed in), every
balancer↔worker connection runs the quote exchange of
:mod:`repro.serve.secure` — the worker proves it runs the expected
subORAM program measurement, the balancer proves it is the balancer —
and all frames ride a sealed, replay-protected channel.  Frame *sizes*
are unchanged (the sealed envelope adds a constant), so the public
traffic shape is exactly the plaintext one.

**Atomic epochs across the process boundary.**  The epoch driver's
atomicity seam is ``copy.deepcopy`` of the subORAM list before each
attempt; :class:`RemoteSubOram` turns that deepcopy into a versioned
transaction: ``__deepcopy__`` allocates a fresh version id and sends
``TXN_BEGIN(parent, new)`` — the worker clones its ``parent`` state as
``new``, *commits* ``parent`` (seals it to disk, drops superseded
versions), and the returned proxy addresses ``new``.  A failed attempt
simply abandons its version: the retry deep-copies the pristine proxies
again, beginning a fresh clone of the same committed parent.

**Crash recovery — local and remote.**  The worker seals its live
version table (pickle + atomic rename) at initialization, at every
transaction boundary, and after every batch, so a worker killed at
*any* point is respawned by :class:`WorkerCluster` with every version
id the balancer might still reference.  Two recovery modes:

- ``remote_snapshots=False`` (default): the respawned worker reloads
  its seal from its own disk — the original shared-fate model.
- ``remote_snapshots=True``: the cluster mirrors each worker's sealed
  blob over the wire (chunked SNAP_FETCH after every state mutation)
  and, when a respawned worker comes back *empty* (its disk is gone
  too — ``kill_worker(..., lose_disk=True)``), restores it with a
  chunked, offset-resumable SNAP_PUSH before use.  No shared
  filesystem is ever assumed: workers may live on other machines.

**Health supervision.**  :meth:`WorkerCluster.check_health` probes a
worker with a deadline-bounded PING and distinguishes *slow* (the
process is alive but missed the deadline — the socket is dropped and
redialed later, no respawn, no state loss) from *dead* (the process is
gone — respawn-and-restore).  :meth:`start_monitor` runs that sweep on
a background heartbeat thread so dead workers respawn before the next
epoch trips over them.

Mid-flight socket failures surface as
:class:`~repro.errors.TransportError`, the retryable fault class, so
the existing :class:`~repro.core.resilience.EpochRetryController` and
:class:`~repro.core.pipeline.EpochPipeline` machinery recovers (or, with
retries disabled, rolls the epoch back and requeues its requests)
without any serve-specific code.

Remote proxies hold live sockets, so deployments using them must run on
a shared-state execution backend (``serial`` or ``thread``) — the same
constraint the driver already enforces for custom transports.

**What crosses this wire.**  INIT and BATCH payloads reuse
:func:`~repro.core.wire.encode_batch`, so message sizes depend only on
partition/batch sizes and the value size — public quantities.  Version
ids, commit points, and snapshot byte counts are epoch-schedule facts,
also public (snapshot size is a function of partition size and value
size, not of contents — the seal is itself sized by public geometry).
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import shutil
import socket
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.core.wire import (
    FrameKind,
    Role,
    WireError,
    decode_batch,
    decode_snap_fetch,
    decode_snap_push,
    decode_txn,
    decode_u32,
    decode_u64,
    decode_versions,
    encode_batch,
    encode_snap_data,
    encode_snap_fetch,
    encode_snap_push,
    encode_txn,
    encode_u32,
    encode_u64,
    encode_versions,
    decode_snap_data,
)
from repro.errors import ConfigurationError, TransportError
from repro.serve.secure import (
    FrameTransport,
    ServeTrust,
    secure_handshake,
)
from repro.telemetry import NULL_TELEMETRY, resolve_telemetry
from repro.types import BatchEntry, OpType

#: Default chunk size for snapshot transfers (64 KiB keeps each frame
#: well under the wire cap while amortizing round trips).
SNAP_CHUNK = 64 * 1024


def _seal(snapshot_path: str, versions: Dict[int, object]) -> bytes:
    """Persist the live version table: pickle then atomic rename.

    Sealing the *whole* table (committed parent and working clone) after
    every mutation means any version id the balancer can still reference
    — the pre-epoch parent during a retried attempt, or a freshly
    installed version the next epoch has not yet committed — survives a
    crash.  Sealing only commit points would lose an installed version
    that crashes before its commit-by-next-transaction.

    Returns the sealed blob so the worker can serve SNAP_FETCH without
    re-reading its own disk.
    """
    blob = pickle.dumps(versions)
    tmp_path = snapshot_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
    os.replace(tmp_path, snapshot_path)
    return blob


def _load_seal(snapshot_path: str):
    """Load the sealed version table; returns ``(versions, blob)``."""
    if not os.path.exists(snapshot_path):
        return {}, b""
    with open(snapshot_path, "rb") as handle:
        blob = handle.read()
    return pickle.loads(blob), blob


def worker_main(
    worker_id: int,
    value_size: int,
    security_parameter: int,
    kernel: Optional[str],
    port_pipe,
    snapshot_path: str,
    crash_after: Optional[int] = None,
    crypto: str = "batched",
    trust_secret: Optional[bytes] = None,
) -> None:
    """One subORAM worker process: accept, handshake, serve frames.

    Single-threaded by design — a subORAM's batches execute in fixed
    balancer order anyway, so one connection at a time is the natural
    concurrency.  When the balancer's connection drops the worker loops
    back to ``accept`` and waits for a reconnect; its versioned state
    survives in memory (and the committed version on disk).

    With ``trust_secret`` the worker presents an attested quote for the
    subORAM program measurement and serves only sealed frames; without
    it the channel is plaintext (both sides must agree — a mode
    mismatch fails closed at the handshake).

    ``crash_after`` is the deterministic chaos seam: after serving that
    many BATCH frames the process exits *after applying and sealing*
    the batch but *before replying* — the worst-case crash point, where
    the balancer cannot know whether the batch landed and must retry
    the epoch on a fresh clone of the committed parent.
    """
    from repro.suboram.suboram import SubOram

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port_pipe.send(listener.getsockname()[1])
    port_pipe.close()

    trust = ServeTrust(trust_secret) if trust_secret is not None else None
    enclave = (
        trust.enclave(Role.WORKER, instance=worker_id)
        if trust is not None else None
    )
    link_name = f"worker-{worker_id}"

    versions, sealed_blob = _load_seal(snapshot_path)
    batches_served = 0
    push_buf = b""

    while True:
        conn, _ = listener.accept()
        transport: Optional[FrameTransport] = None
        try:
            _version, _role, pair = secure_handshake(
                conn, Role.WORKER,
                trust=trust, enclave=enclave,
                attested=trust is not None,
                expected_roles=(Role.BALANCER,),
                link_name=link_name,
            )
            transport = FrameTransport(conn, pair)
            while True:
                kind, payload = transport.recv()
                if kind == FrameKind.INIT:
                    suboram = SubOram(
                        worker_id,
                        value_size,
                        security_parameter=security_parameter,
                        kernel=kernel,
                        crypto=crypto,
                    )
                    suboram.initialize({
                        entry.key: entry.value
                        for entry in decode_batch(payload)
                    })
                    versions = {0: suboram}
                    sealed_blob = _seal(snapshot_path, versions)
                    transport.send(
                        FrameKind.INIT_ACK,
                        encode_u32(suboram.num_objects),
                    )
                elif kind == FrameKind.BATCH:
                    version = decode_u64(payload[:8])
                    if version not in versions:
                        raise WireError(
                            f"worker {worker_id} has no state "
                            f"version {version}"
                        )
                    entries = versions[version].batch_access(
                        decode_batch(payload[8:])
                    )
                    sealed_blob = _seal(snapshot_path, versions)
                    batches_served += 1
                    if crash_after is not None and batches_served >= crash_after:
                        os._exit(1)  # chaos: die with the reply unsent
                    transport.send(
                        FrameKind.BATCH_REPLY, encode_batch(entries)
                    )
                elif kind == FrameKind.TXN_BEGIN:
                    parent, new = decode_txn(payload)
                    if parent not in versions:
                        raise WireError(
                            f"worker {worker_id} has no state "
                            f"version {parent} to clone"
                        )
                    committed_suboram = versions[parent]
                    # parent is now the committed state; superseded
                    # versions are dropped.
                    versions = {
                        parent: committed_suboram,
                        new: copy.deepcopy(committed_suboram),
                    }
                    sealed_blob = _seal(snapshot_path, versions)
                    transport.send(FrameKind.TXN_ACK)
                elif kind == FrameKind.PING:
                    # Optional u32 payload: echo delay in ms — the
                    # health monitor's "slow worker" test seam.
                    if payload:
                        time.sleep(decode_u32(payload) / 1000.0)
                    transport.send(FrameKind.PONG)
                elif kind == FrameKind.SNAP_FETCH:
                    offset, max_chunk = decode_snap_fetch(payload)
                    transport.send(
                        FrameKind.SNAP_DATA,
                        encode_snap_data(
                            len(sealed_blob),
                            sealed_blob[offset:offset + max_chunk],
                        ),
                    )
                elif kind == FrameKind.SNAP_PUSH:
                    offset, last, chunk = decode_snap_push(payload)
                    if offset == len(push_buf):
                        push_buf += chunk
                        if last:
                            versions = pickle.loads(push_buf)
                            sealed_blob = _seal(snapshot_path, versions)
                            push_buf = b""
                            transport.send(
                                FrameKind.SNAP_ACK,
                                encode_u64(len(sealed_blob)),
                            )
                            continue
                    # Out-of-order offsets (a resumed push after a
                    # drop) are not applied; the ack tells the pusher
                    # where to resume from.
                    transport.send(
                        FrameKind.SNAP_ACK, encode_u64(len(push_buf))
                    )
                elif kind == FrameKind.VERSIONS_QUERY:
                    transport.send(
                        FrameKind.VERSIONS_REPLY,
                        encode_versions(sorted(versions)),
                    )
                else:
                    raise WireError(f"unexpected worker frame kind {kind}")
        except TransportError:
            pass  # balancer went away; await a reconnect
        except Exception as exc:
            # Protocol or application bug (bad frame, capacity abort,
            # failed attestation): report it — non-retryable on the
            # balancer side — and drop the connection, but keep the
            # worker and its state alive.
            try:
                if transport is not None:
                    transport.send(
                        FrameKind.ERROR,
                        f"{type(exc).__name__}: {exc}".encode("utf-8"),
                    )
            except TransportError:
                pass
        finally:
            if transport is not None:
                transport.close()
            else:
                conn.close()


class RemoteSubOram:
    """Balancer-side proxy for one worker's subORAM (duck-typed).

    The epoch driver cannot tell this apart from an in-process
    :class:`~repro.suboram.suboram.SubOram`: ``initialize``,
    ``batch_access`` and ``num_objects`` have identical contracts, and
    ``copy.deepcopy`` (the driver's atomicity seam) becomes the
    ``TXN_BEGIN`` transaction described in the module docstring.
    """

    def __init__(self, cluster: "WorkerCluster", index: int, version: int = 0,
                 num_objects: int = 0):
        self._cluster = cluster
        self._index = index
        self._version = version
        self._num_objects = num_objects
        #: Telemetry seam (attach_telemetry_to_suborams attaches here).
        self.telemetry = NULL_TELEMETRY

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Ship this partition to the worker and load it there."""
        payload = encode_batch([
            BatchEntry(op=OpType.WRITE, key=key, value=value, is_dummy=False)
            for key, value in sorted(objects.items())
        ])
        ack = self._cluster.request(
            self._index, FrameKind.INIT, payload, FrameKind.INIT_ACK
        )
        self._version = 0
        self._num_objects = decode_u32(ack)

    def batch_access(self, batch: List[BatchEntry]) -> List[BatchEntry]:
        """One framed batch round trip against this proxy's version."""
        with self.telemetry.time(
            "serve_worker_batch_seconds", unit=self._index
        ):
            reply = self._cluster.request(
                self._index,
                FrameKind.BATCH,
                encode_u64(self._version) + encode_batch(batch),
                FrameKind.BATCH_REPLY,
            )
        return decode_batch(reply)

    @property
    def num_objects(self) -> int:
        """Partition size reported by the worker at initialization."""
        return self._num_objects

    def __deepcopy__(self, memo) -> "RemoteSubOram":
        """The atomicity seam: begin a worker-side transaction.

        Called by the epoch driver before each atomic attempt.  The
        worker clones this proxy's version under a fresh id (committing
        the parent as a side effect); the clone proxy addresses the new
        version, so a failed attempt's mutations are confined to a
        version nobody references afterwards.
        """
        new_version = self._cluster.next_version()
        self._cluster.request(
            self._index,
            FrameKind.TXN_BEGIN,
            encode_txn(self._version, new_version),
            FrameKind.TXN_ACK,
        )
        clone = RemoteSubOram(
            self._cluster, self._index, new_version, self._num_objects
        )
        clone.telemetry = self.telemetry
        memo[id(self)] = clone
        return clone

    def __repr__(self) -> str:
        return (
            f"RemoteSubOram(index={self._index}, version={self._version}, "
            f"objects={self._num_objects})"
        )


class WorkerCluster:
    """Supervisor for S subORAM worker processes.

    Spawns the workers, owns one framed channel per worker (attested
    and sealed when a trust is configured), respawns crashed workers,
    restores lost state over the wire (``remote_snapshots``), and hands
    out :class:`RemoteSubOram` proxies through :meth:`factory` — a
    drop-in ``suboram_factory`` for :class:`~repro.core.snoopy.Snoopy`::

        cluster = WorkerCluster(num_workers=3, value_size=16).start()
        store = Snoopy(config, suboram_factory=cluster.factory)

    Thread-safety: one lock per worker serializes that worker's framed
    round trips (the thread backend may drive distinct workers
    concurrently, which uses distinct sockets and locks).

    Args:
        trust: a :class:`~repro.serve.secure.ServeTrust` (or a raw
            secret ``bytes``) establishing the attested channels.
            ``None`` (default) keeps the channels plaintext.
        remote_snapshots: mirror every worker's sealed state over the
            wire and restore an empty respawned worker from the mirror
            (the no-shared-filesystem deployment model).
        injector: a :class:`~repro.core.faults.NetworkFaultInjector`
            whose plan addresses links named ``worker-<i>``; every
            connect and send on the worker channels consults it.
        snap_chunk: snapshot transfer chunk size in bytes.
    """

    def __init__(
        self,
        num_workers: int,
        value_size: int,
        security_parameter: int = 128,
        kernel: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        telemetry=None,
        crash_plan: Optional[Dict[int, int]] = None,
        crypto: str = "batched",
        trust=None,
        remote_snapshots: bool = False,
        injector=None,
        snap_chunk: int = SNAP_CHUNK,
    ):
        self.num_workers = num_workers
        self.value_size = value_size
        self.security_parameter = security_parameter
        self.kernel = kernel
        self.crypto = crypto
        self.telemetry = resolve_telemetry(telemetry)
        if isinstance(trust, (bytes, bytearray)):
            trust = ServeTrust(bytes(trust))
        self.trust: Optional[ServeTrust] = trust
        self._balancer_enclave = (
            trust.enclave(Role.BALANCER) if trust is not None else None
        )
        self.remote_snapshots = remote_snapshots
        self.snap_chunk = snap_chunk
        self._injector = injector
        self._owns_snapshot_dir = snapshot_dir is None
        self._snapshot_dir = (
            snapshot_dir
            if snapshot_dir is not None
            else tempfile.mkdtemp(prefix="snoopy-workers-")
        )
        self._context = multiprocessing.get_context()
        self._procs: List[Optional[multiprocessing.Process]] = (
            [None] * num_workers
        )
        self._ports: List[Optional[int]] = [None] * num_workers
        self._transports: List[Optional[FrameTransport]] = (
            [None] * num_workers
        )
        self._locks = [threading.Lock() for _ in range(num_workers)]
        self._version_lock = threading.Lock()
        self._next_version = 1
        self._started = False
        #: Wire-mirrored sealed blobs (remote_snapshots mode).
        self._snap_cache: List[bytes] = [b""] * num_workers
        #: Workers respawned since their last restore check.
        self._respawned: List[bool] = [False] * num_workers
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        # Deterministic chaos: worker index -> crash after N batches.
        # Consumed at first spawn only, so the respawned worker is sane.
        self._crash_plan = dict(crash_plan or {})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerCluster":
        """Spawn every worker process and connect to it."""
        if self._started:
            raise ConfigurationError("worker cluster already started")
        self._started = True
        for index in range(self.num_workers):
            self._spawn(index)
            self._connect(index)
            self._respawned[index] = False
        return self

    def stop(self) -> None:
        """Terminate the workers and remove owned snapshots; idempotent."""
        self.stop_monitor()
        for index in range(self.num_workers):
            self._close_channel(index)
            proc = self._procs[index]
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            self._procs[index] = None
        if self._owns_snapshot_dir:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
        self._started = False

    def __enter__(self) -> "WorkerCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Proxies
    # ------------------------------------------------------------------
    def factory(self, suboram_id: int, config=None, keychain=None):
        """``suboram_factory`` seam: a proxy for worker ``suboram_id``.

        The ``config``/``keychain`` arguments exist to match the factory
        signature; partition keys never leave the balancer side, and the
        worker encrypts its store under its own process-local keys.
        """
        if not 0 <= suboram_id < self.num_workers:
            raise ConfigurationError(
                f"subORAM index {suboram_id} outside this cluster's "
                f"{self.num_workers} workers"
            )
        if config is not None and config.value_size != self.value_size:
            raise ConfigurationError(
                f"deployment value_size {config.value_size} != cluster "
                f"value_size {self.value_size}"
            )
        return RemoteSubOram(self, suboram_id)

    def next_version(self) -> int:
        """Allocate a cluster-unique state-version id."""
        with self._version_lock:
            version = self._next_version
            self._next_version += 1
            return version

    # ------------------------------------------------------------------
    # Worker channel
    # ------------------------------------------------------------------
    def request(
        self, index: int, kind: int, payload: bytes, expect_kind: int
    ) -> bytes:
        """One framed round trip to worker ``index``; returns the reply payload.

        Respawns a dead worker (and, in ``remote_snapshots`` mode,
        restores a state-less one over the wire) and reconnects a
        dropped channel *before* sending, so recovery is transparent; a
        failure *during* the round trip — the crash-mid-batch case —
        closes the channel and raises :class:`TransportError`, leaving
        recovery to the caller's retry (which lands back here).
        """
        state_mutating = kind in (
            FrameKind.INIT, FrameKind.BATCH, FrameKind.TXN_BEGIN
        )
        with self._locks[index]:
            self._ensure(index)
            reply = self._round_trip(index, kind, payload, expect_kind)
            if self.remote_snapshots and state_mutating:
                self._refresh_snapshot(index)
            return reply

    def _round_trip(
        self, index: int, kind: int, payload: bytes, expect_kind: int
    ) -> bytes:
        """One send/recv on an already-ensured channel (lock held)."""
        transport = self._transports[index]
        try:
            transport.send(kind, payload)
            reply_kind, reply = transport.recv()
        except TransportError as exc:
            self._close_channel(index)
            exc.unit = index
            raise
        if reply_kind == FrameKind.ERROR:
            self._close_channel(index)
            raise WireError(
                f"worker {index}: " + reply.decode("utf-8", "replace")
            )
        if reply_kind != expect_kind:
            raise WireError(
                f"worker {index} replied frame kind {reply_kind}, "
                f"expected {expect_kind}"
            )
        return reply

    def ping(self, index: int) -> bool:
        """Liveness probe; returns False instead of raising on a dead worker."""
        try:
            self.request(index, FrameKind.PING, b"", FrameKind.PONG)
            return True
        except TransportError:
            return False

    def timed_ping(
        self,
        index: int,
        timeout: Optional[float] = None,
        echo_delay_ms: int = 0,
    ) -> float:
        """Deadline-bounded PING; returns the round-trip time in seconds.

        ``echo_delay_ms`` asks the worker to stall before answering —
        the test seam for exercising the slow-worker path.  A missed
        deadline raises :class:`TransportError` whose ``__cause__`` is a
        timeout, which :meth:`check_health` uses to classify *slow*
        (alive, channel dropped, no respawn) versus *dead*.
        """
        payload = encode_u32(echo_delay_ms) if echo_delay_ms else b""
        with self._locks[index]:
            self._ensure(index)
            transport = self._transports[index]
            started = time.monotonic()
            try:
                transport.settimeout(timeout)
                self._round_trip(
                    index, FrameKind.PING, payload, FrameKind.PONG
                )
            finally:
                live = self._transports[index]
                if live is not None:
                    live.settimeout(None)
            return time.monotonic() - started

    def check_health(self, index: int, timeout: float = 1.0) -> str:
        """Classify worker ``index``: ``"ok"``, ``"slow"``, or ``"dead"``.

        *Slow* means the process is alive but missed the PING deadline:
        the channel is dropped (a fresh one is dialed on next use) but
        the process — and its in-memory state — is left alone.  *Dead*
        means the process is gone; the next use (or the monitor)
        respawns it.
        """
        self.telemetry.counter("serve_worker_health_checks_total").inc()
        proc = self._procs[index]
        if proc is None or not proc.is_alive():
            self.telemetry.counter("serve_worker_dead_total").inc()
            return "dead"
        try:
            self.timed_ping(index, timeout=timeout)
            return "ok"
        except TransportError as exc:
            proc = self._procs[index]
            if proc is not None and proc.is_alive():
                slow = isinstance(
                    exc.__cause__, (socket.timeout, TimeoutError)
                )
                if slow:
                    self.telemetry.counter(
                        "serve_worker_slow_total"
                    ).inc()
                    return "slow"
            self.telemetry.counter("serve_worker_dead_total").inc()
            return "dead"

    def start_monitor(
        self, interval: float = 1.0, timeout: float = 1.0
    ) -> None:
        """Run :meth:`monitor_once` on a background heartbeat thread."""
        if self._monitor_thread is not None:
            return
        self._monitor_stop.clear()

        def _run() -> None:
            while not self._monitor_stop.wait(interval):
                try:
                    self.monitor_once(timeout=timeout)
                except Exception:
                    # The monitor must never take the cluster down; a
                    # failed sweep retries on the next heartbeat.
                    pass

        self._monitor_thread = threading.Thread(
            target=_run, name="snoopy-worker-monitor", daemon=True
        )
        self._monitor_thread.start()

    def stop_monitor(self) -> None:
        """Stop the heartbeat thread; idempotent."""
        if self._monitor_thread is None:
            return
        self._monitor_stop.set()
        self._monitor_thread.join(timeout=5)
        self._monitor_thread = None

    def monitor_once(self, timeout: float = 1.0) -> Dict[int, str]:
        """One health sweep; respawns dead workers eagerly.

        Returns ``{index: status}``.  Dead workers are brought back
        (respawn + reconnect + remote restore) inside the sweep so the
        next epoch finds a ready channel instead of paying recovery
        latency on its critical path.
        """
        statuses: Dict[int, str] = {}
        for index in range(self.num_workers):
            status = self.check_health(index, timeout=timeout)
            if status == "dead":
                try:
                    with self._locks[index]:
                        self._ensure(index)
                    status = "respawned"
                except TransportError:
                    pass  # still down; the next sweep retries
            statuses[index] = status
        return statuses

    def kill_worker(self, index: int, lose_disk: bool = False) -> None:
        """Hard-kill one worker process (chaos testing).

        With ``lose_disk`` the worker's sealed snapshot is deleted too —
        the machine-is-gone scenario only ``remote_snapshots`` recovery
        survives.
        """
        proc = self._procs[index]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5)
        self._close_channel(index)
        if lose_disk:
            for path in (
                self._snapshot_path(index),
                self._snapshot_path(index) + ".tmp",
            ):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------
    # Snapshot mirroring (remote_snapshots mode)
    # ------------------------------------------------------------------
    def _refresh_snapshot(self, index: int) -> None:
        """Mirror worker ``index``'s sealed blob (lock held).

        Chunked and offset-resumable: a connection drop mid-fetch
        re-ensures the channel and continues from the bytes already
        received (the worker's blob is stable between mutations, so the
        offsets stay valid across its respawn-from-disk).
        """
        buf = b""
        failures = 0
        while True:
            try:
                reply = self._round_trip(
                    index,
                    FrameKind.SNAP_FETCH,
                    encode_snap_fetch(len(buf), self.snap_chunk),
                    FrameKind.SNAP_DATA,
                )
            except TransportError:
                failures += 1
                if failures >= 3:
                    raise
                self._ensure(index)
                continue
            total, chunk = decode_snap_data(reply)
            buf += chunk
            if len(buf) >= total:
                break
        self._snap_cache[index] = buf
        self.telemetry.counter("serve_snapshot_fetches_total").inc()
        self.telemetry.gauge("serve_snapshot_bytes").set(len(buf))

    def _push_snapshot(self, index: int, blob: bytes) -> None:
        """Restore worker ``index`` from the mirror (lock held).

        Offset-resumable: every chunk is acknowledged with the worker's
        buffered length, so after a drop the push resumes exactly where
        the worker left off (including restarting from zero if the
        worker respawned and lost its partial buffer).
        """
        offset = 0
        while True:
            chunk = blob[offset:offset + self.snap_chunk]
            last = offset + len(chunk) >= len(blob)
            ack = self._round_trip(
                index,
                FrameKind.SNAP_PUSH,
                encode_snap_push(offset, last, chunk),
                FrameKind.SNAP_ACK,
            )
            acked = decode_u64(ack)
            if last and acked >= len(blob):
                break
            offset = acked
        self.telemetry.counter("serve_snapshot_restores_total").inc()

    def _restore_if_empty(self, index: int) -> None:
        """After a respawn: push the mirror if the worker came back bare."""
        if not self.remote_snapshots or not self._snap_cache[index]:
            self._respawned[index] = False
            return
        reply = self._round_trip(
            index, FrameKind.VERSIONS_QUERY, b"", FrameKind.VERSIONS_REPLY
        )
        if not decode_versions(reply):
            self._push_snapshot(index, self._snap_cache[index])
        self._respawned[index] = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot_path(self, index: int) -> str:
        return os.path.join(self._snapshot_dir, f"worker-{index}.seal")

    def _spawn(self, index: int) -> None:
        parent_pipe, child_pipe = self._context.Pipe(duplex=False)
        proc = self._context.Process(
            target=worker_main,
            args=(
                index,
                self.value_size,
                self.security_parameter,
                self.kernel,
                child_pipe,
                self._snapshot_path(index),
                self._crash_plan.pop(index, None),
                self.crypto,
                self.trust.secret if self.trust is not None else None,
            ),
            daemon=True,
            name=f"snoopy-worker-{index}",
        )
        proc.start()
        child_pipe.close()
        try:
            self._ports[index] = parent_pipe.recv()
        except EOFError as exc:
            raise TransportError(
                f"worker {index} died before binding its port"
            ) from exc
        finally:
            parent_pipe.close()
        self._procs[index] = proc
        self._respawned[index] = True

    def _connect(self, index: int) -> None:
        link = f"worker-{index}"
        dribble_s = 0.0
        if self._injector is not None:
            event = self._injector.on_connect(link)
            if event is not None and event.kind == "slow_handshake":
                dribble_s = event.delay_s
        try:
            sock = socket.create_connection(
                ("127.0.0.1", self._ports[index]), timeout=30
            )
        except OSError as exc:
            raise TransportError(
                f"worker {index} connect failed: {exc}"
            ) from exc
        sock.settimeout(None)
        try:
            _version, _role, pair = secure_handshake(
                sock, Role.BALANCER,
                trust=self.trust,
                enclave=self._balancer_enclave,
                attested=self.trust is not None,
                expected_roles=(Role.WORKER,),
                link_name=link,
                dribble_s=dribble_s,
            )
        except BaseException:
            sock.close()
            raise
        self._transports[index] = FrameTransport(
            sock, pair, injector=self._injector, link=link
        )

    def _close_channel(self, index: int) -> None:
        transport = self._transports[index]
        if transport is not None:
            transport.close()
        self._transports[index] = None

    def _ensure(self, index: int) -> None:
        """Respawn/reconnect worker ``index`` if its channel is down.

        Tries hard to succeed transparently whenever recovery is
        possible at all, so callers rarely see recovery latency as a
        failed epoch attempt.  The loop absorbs the race where a worker
        that just died still reports ``is_alive()`` (connect is refused,
        the join lets it be reaped, the next pass respawns it) and
        injected partitions spanning a few connect attempts.
        """
        failure: Optional[TransportError] = None
        for _ in range(5):
            proc = self._procs[index]
            if proc is None or not proc.is_alive():
                self._close_channel(index)
                self._spawn(index)
                self.telemetry.counter("serve_worker_respawns_total").inc()
            if self._transports[index] is None:
                try:
                    self._connect(index)
                except TransportError as exc:
                    failure = exc
                    proc = self._procs[index]
                    if proc is not None:
                        proc.join(timeout=0.2)
                    continue
            if self._respawned[index]:
                try:
                    self._restore_if_empty(index)
                except TransportError as exc:
                    failure = exc
                    continue
            return
        failure.unit = index
        raise failure
