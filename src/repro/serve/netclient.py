"""``NetworkSnoopyClient`` — the TCP implementation of ``SnoopyClient``.

The in-process :class:`~repro.core.snoopy.Snoopy` deployment and this
client expose the same surface (the :class:`~repro.core.client.SnoopyClient`
protocol): ``submit`` returns a ticket that resolves when the request's
epoch closes, and ``read``/``write``/``batch`` wrap it synchronously.
Code written against the protocol runs unchanged against either.

A background reader thread owns the receive side of the socket and
resolves :class:`NetworkTicket` objects as RESPONSE frames arrive, so
``submit`` never blocks on the epoch cadence — mirroring how the
in-process pipeline resolves tickets from its match thread.

Two epoch modes, matching the server's:

* Against a clocked server (the production default) tickets resolve on
  the server's fixed epoch period; ``read``/``write`` simply wait.
* Against an unclocked server, pass ``manual_epochs=True`` and the
  synchronous helpers drive the CLOSE_EPOCH admin frame themselves —
  the deterministic mode the differential tests rely on.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.wire import (
    FrameKind,
    Role,
    WireError,
    decode_response,
    decode_u32,
    decode_u64,
    encode_request,
    encode_u32,
)
from repro.errors import (
    ReproError,
    TaskTimeoutError,
    TransportError,
)
from repro.serve.protocol import handshake, recv_frame, send_frame
from repro.types import OpType, Request, Response

_CLIENT_IDS = itertools.count(1)


class NetworkTicket:
    """Client-side handle for one in-flight request.

    Mirrors :class:`~repro.core.tickets.Ticket`: ``result()`` blocks
    until the epoch containing the request closes, ``done()`` polls, and
    ``add_done_callback`` fires on the reader thread at resolution.  The
    server's RESPONSE frame carries the authoritative linearizability
    coordinates, so :attr:`load_balancer`, :attr:`arrival`, and
    :attr:`epoch` are ``None`` until the ticket resolves.
    """

    __slots__ = (
        "request", "req_id", "load_balancer", "arrival", "epoch",
        "_response", "_error", "_event", "_callbacks", "_lock",
    )

    def __init__(self, req_id: int, request: Request):
        self.req_id = req_id
        self.request = request
        self.load_balancer: Optional[int] = None
        self.arrival: Optional[int] = None
        self.epoch: Optional[int] = None
        self._response: Optional[Response] = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self._callbacks: Optional[List[Callable]] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        """True once a RESPONSE arrived (or the connection failed)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block up to ``timeout`` seconds; True if the ticket settled."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Response:
        """The response, blocking until the request's epoch closes.

        Raises:
            TaskTimeoutError: ``timeout`` elapsed first.  The ticket
                stays pending — the request is still queued server-side
                and the ticket resolves normally if the epoch later
                closes (the client-timeout fault semantics).
            TransportError: the connection died before resolution.
        """
        if not self._event.wait(timeout):
            raise TaskTimeoutError(
                f"request {self.req_id} unresolved after {timeout}s "
                "(still queued for a future epoch)"
            )
        if self._error is not None:
            raise self._error
        return self._response

    def add_done_callback(self, callback: Callable[["NetworkTicket"], None]) -> None:
        """Run ``callback(ticket)`` at settlement (reader thread), or now."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _settle(
        self,
        response: Optional[Response],
        coords: Optional[Tuple[int, int, int]],
        error: Optional[BaseException],
    ) -> None:
        with self._lock:
            self._response = response
            self._error = error
            if coords is not None:
                self.load_balancer, self.arrival, self.epoch = coords
            callbacks, self._callbacks = self._callbacks, None
            self._event.set()
        for callback in callbacks or ():
            callback(self)


class NetworkSnoopyClient:
    """Blocking TCP client for a :class:`~repro.serve.server.SnoopyServer`.

    Implements the :class:`~repro.core.client.SnoopyClient` protocol over
    the versioned wire format.  The deployment's geometry (object size,
    balancer count) is learned from the server's INIT frame right after
    the handshake, so construction needs only an address.

    Args:
        host / port: server address.
        timeout: default seconds the synchronous helpers wait for a
            response (``None`` waits forever).  The connect itself uses
            the same bound.
        manual_epochs: drive epochs with CLOSE_EPOCH from the
            synchronous helpers (for servers started with ``clock=False``).
        client_id: id stamped into generated requests; unique per client
            by default so responses are attributable.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 30.0,
        manual_epochs: bool = False,
        client_id: Optional[int] = None,
    ):
        self.timeout = timeout
        self.manual_epochs = manual_epochs
        self.client_id = (
            client_id if client_id is not None else next(_CLIENT_IDS)
        )
        self._seq = itertools.count()
        self._req_ids = itertools.count()
        self._pending = {}
        self._send_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._admin_replies = queue.Queue()
        self._closed = False
        self._conn_error: Optional[BaseException] = None

        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        self._sock.settimeout(None)
        handshake(self._sock, Role.CLIENT)
        kind, payload = recv_frame(self._sock)
        if kind == FrameKind.ERROR:
            raise WireError(payload.decode("utf-8", "replace"))
        if kind != FrameKind.INIT:
            raise WireError(f"expected INIT after handshake, got kind {kind}")
        self.value_size = decode_u32(payload[:4])
        self.num_load_balancers = decode_u32(payload[4:8])

        self._reader = threading.Thread(
            target=self._read_loop, name="snoopy-netclient-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # SnoopyClient protocol
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> NetworkTicket:
        """Send one request; returns a ticket resolving at epoch close.

        ``load_balancer`` pins the request to a specific balancer (the
        differential tests need submission order to fix balancer
        assignment); by default the server's deployment picks one.
        """
        if self._conn_error is not None:
            raise self._conn_error
        if self._closed:
            raise TransportError("client is closed")
        with self._send_lock:
            req_id = next(self._req_ids)
            ticket = NetworkTicket(req_id, request)
            self._pending[req_id] = ticket
            try:
                send_frame(
                    self._sock,
                    FrameKind.REQUEST,
                    encode_request(
                        req_id,
                        request,
                        self.value_size,
                        load_balancer=(
                            load_balancer if load_balancer is not None else -1
                        ),
                    ),
                )
            except TransportError as exc:
                self._pending.pop(req_id, None)
                raise exc
        return ticket

    def read(self, key: int) -> Optional[bytes]:
        """Read one object (one request, one epoch round trip)."""
        return self._sync_op(Request(
            op=OpType.READ, key=key,
            client_id=self.client_id, seq=next(self._seq),
        ))

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object; returns the prior contents."""
        return self._sync_op(Request(
            op=OpType.WRITE, key=key, value=value,
            client_id=self.client_id, seq=next(self._seq),
        ))

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Submit ``requests`` together and wait for all responses."""
        tickets = [self.submit(request) for request in requests]
        if self.manual_epochs and tickets:
            self.close_epoch()
        return [t.result(self.timeout) for t in tickets]

    def close(self) -> None:
        """Close the connection; unresolved tickets fail with TransportError."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=10)

    def __enter__(self) -> "NetworkSnoopyClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admin frames
    # ------------------------------------------------------------------
    def close_epoch(self, flush: bool = False) -> int:
        """Ask the server to close the current epoch; returns its number.

        With ``flush`` the server also drains every in-flight pipeline
        epoch before replying, so all earlier tickets are resolved.
        """
        return decode_u64(
            self._admin_round_trip(
                FrameKind.CLOSE_EPOCH,
                encode_u32(1 if flush else 0),
                FrameKind.EPOCH_CLOSED,
            )
        )

    def ping(self) -> None:
        """Liveness round trip."""
        self._admin_round_trip(FrameKind.PING, b"", FrameKind.PONG)

    def _admin_round_trip(
        self, kind: int, payload: bytes, expect: int
    ) -> bytes:
        with self._admin_lock:
            if self._conn_error is not None:
                raise self._conn_error
            with self._send_lock:
                send_frame(self._sock, kind, payload)
            try:
                reply_kind, reply = self._admin_replies.get(
                    timeout=self.timeout
                )
            except queue.Empty:
                raise TaskTimeoutError(
                    f"no reply to admin frame {kind} within {self.timeout}s"
                ) from None
            if isinstance(reply, BaseException):
                raise reply
            if reply_kind != expect:
                raise WireError(
                    f"expected admin reply {expect}, got {reply_kind}"
                )
            return reply

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_op(self, request: Request) -> Optional[bytes]:
        ticket = self.submit(request)
        if self.manual_epochs:
            self.close_epoch()
        return ticket.result(self.timeout).value

    def _read_loop(self) -> None:
        try:
            while True:
                kind, payload = recv_frame(self._sock)
                if kind == FrameKind.RESPONSE:
                    req_id, response, coords = decode_response(
                        payload, self.value_size
                    )
                    ticket = self._pending.pop(req_id, None)
                    if ticket is not None:
                        ticket._settle(response, coords, None)
                elif kind in (FrameKind.EPOCH_CLOSED, FrameKind.PONG):
                    self._admin_replies.put((kind, payload))
                elif kind == FrameKind.ERROR:
                    raise ReproError(
                        "server error: "
                        + payload.decode("utf-8", "replace")
                    )
                else:
                    raise WireError(f"unexpected frame kind {kind}")
        except BaseException as exc:
            if self._closed and isinstance(exc, (TransportError, OSError)):
                exc = TransportError("client closed with requests in flight")
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        """Connection is gone: settle every outstanding wait with ``exc``."""
        self._conn_error = exc
        pending, self._pending = dict(self._pending), {}
        for ticket in pending.values():
            ticket._settle(None, None, exc)
        self._admin_replies.put((FrameKind.ERROR, exc))
