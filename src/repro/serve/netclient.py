"""``NetworkSnoopyClient`` — the TCP implementation of ``SnoopyClient``.

The in-process :class:`~repro.core.snoopy.Snoopy` deployment and this
client expose the same surface (the :class:`~repro.core.client.SnoopyClient`
protocol): ``submit`` returns a ticket that resolves when the request's
epoch closes, and ``read``/``write``/``batch`` wrap it synchronously.
Code written against the protocol runs unchanged against either.

A background reader thread owns the receive side of the connection and
resolves :class:`NetworkTicket` objects as RESPONSE frames arrive, so
``submit`` never blocks on the epoch cadence — mirroring how the
in-process pipeline resolves tickets from its match thread.

**Resilience.**  The reader thread also owns recovery: when the
connection drops (a real network fault or an injected chaos event) it
redials under a :class:`ReconnectPolicy` — exponential backoff with
*seeded* jitter, so two runs of the same seed back off identically —
re-runs the attested handshake, resumes the server-side session, and
resends every unresolved request in ``req_id`` order.  The server
deduplicates resent requests and replays undelivered responses, so
every ticket resolves **exactly once** across any number of drops.  A
:class:`CircuitBreaker` fast-fails ``submit`` during an outage instead
of letting callers pile onto a dead connection, and per-request
deadlines (``request_timeout``) bound how long a caller can be parked
on a ticket regardless of how recovery goes.

Typed degradation: a server shedding load answers BUSY
(:class:`~repro.errors.ServerBusyError` — retryable), a draining server
answers SHUTTING_DOWN (:class:`~repro.errors.ServerShuttingDownError`
— *not* retryable; fail over instead), and a lost session surfaces as
:class:`~repro.errors.SessionExpiredError`.

Two epoch modes, matching the server's:

* Against a clocked server (the production default) tickets resolve on
  the server's fixed epoch period; ``read``/``write`` simply wait.
* Against an unclocked server, pass ``manual_epochs=True`` and the
  synchronous helpers drive the CLOSE_EPOCH admin frame themselves —
  the deterministic mode the differential tests rely on.
"""

from __future__ import annotations

import itertools
import queue
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.wire import (
    FrameKind,
    Role,
    WireError,
    decode_response,
    decode_session,
    decode_u32,
    decode_u64,
    encode_request,
    encode_session,
    encode_u32,
    encode_u64,
)
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    IntegrityError,
    ReplayError,
    ReproError,
    ServerBusyError,
    ServerShuttingDownError,
    ServiceUnavailableError,
    SessionExpiredError,
    TaskTimeoutError,
    TransportError,
)
from repro.serve.secure import ServeTrust, connect_transport
from repro.types import OpType, Request, Response

_CLIENT_IDS = itertools.count(1)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Backoff schedule for redialing a dropped connection.

    Exponential with *deterministic* jitter: the jitter factors come
    from ``random.Random(seed)``, so a chaos run and its replay back
    off identically — reconnect timing never makes a seeded run
    diverge.

    ``max_attempts`` bounds one outage's dial attempts; exhausting them
    fails every pending ticket with the last transport error.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delays(self) -> Iterator[float]:
        """The per-attempt sleep schedule (fresh iterator per outage)."""
        rng = random.Random(self.seed)
        delay = self.base_delay_s
        for _ in range(self.max_attempts):
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, min(self.max_delay_s, delay) * factor)
            delay *= self.multiplier


class CircuitBreaker:
    """Per-connection circuit breaker (closed → open → half-open).

    ``failure_threshold`` consecutive connection failures open the
    circuit: ``allow()`` turns False so callers fail fast with
    :class:`~repro.errors.CircuitOpenError` instead of queueing on a
    dead link.  After ``reset_after_s`` the circuit half-opens —
    ``probe()`` admits exactly one dial attempt; its success closes the
    circuit, its failure reopens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current breaker state: ``closed``, ``open``, or ``half-open``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a *request* proceed right now?"""
        with self._lock:
            if self._state != "open":
                return True
            if self._clock() - self._opened_at >= self.reset_after_s:
                return True  # cooldown over; let traffic probe
            return False

    def probe(self) -> bool:
        """May a *dial attempt* proceed right now? (half-opens on cooldown)"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "half-open":
                return False  # one probe already in flight
            if self._clock() - self._opened_at >= self.reset_after_s:
                self._state = "half-open"
                return True
            return False

    def record_success(self) -> None:
        """Report a successful call: reset the failure count, close the breaker."""
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        """Report a failed call; trips the breaker open at the threshold."""
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()


class NetworkTicket:
    """Client-side handle for one in-flight request.

    Mirrors :class:`~repro.core.tickets.Ticket`: ``result()`` blocks
    until the epoch containing the request closes, ``done()`` polls, and
    ``add_done_callback`` fires on the reader thread at resolution.  The
    server's RESPONSE frame carries the authoritative linearizability
    coordinates, so :attr:`load_balancer`, :attr:`arrival`, and
    :attr:`epoch` are ``None`` until the ticket resolves.

    A ticket may carry a deadline (monotonic-clock instant); waiting
    past it raises :class:`~repro.errors.DeadlineExceededError` even if
    the caller passed a longer explicit timeout.
    """

    __slots__ = (
        "request", "req_id", "load_balancer", "arrival", "epoch",
        "deadline", "pinned", "_response", "_error", "_event",
        "_callbacks", "_lock",
    )

    def __init__(
        self, req_id: int, request: Request,
        deadline: Optional[float] = None, pinned: int = -1,
    ):
        self.req_id = req_id
        self.request = request
        self.deadline = deadline
        #: Balancer pin from submit (resends must preserve it).
        self.pinned = pinned
        self.load_balancer: Optional[int] = None
        self.arrival: Optional[int] = None
        self.epoch: Optional[int] = None
        self._response: Optional[Response] = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self._callbacks: Optional[List[Callable]] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        """True once a RESPONSE arrived (or the request failed)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block up to ``timeout`` seconds; True if the ticket settled."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Response:
        """The response, blocking until the request's epoch closes.

        Raises:
            DeadlineExceededError: the ticket's per-request deadline
                passed first (the ticket stays pending server-side).
            TaskTimeoutError: ``timeout`` elapsed first.  The ticket
                stays pending — the request is still queued server-side
                and the ticket resolves normally if the epoch later
                closes (the client-timeout fault semantics).
            TransportError: the connection died (beyond recovery)
                before resolution.
        """
        effective = timeout
        if self.deadline is not None:
            remaining = self.deadline - time.monotonic()
            if effective is None or remaining < effective:
                effective = max(0.0, remaining)
        if not self._event.wait(effective):
            if (
                self.deadline is not None
                and time.monotonic() >= self.deadline
                and (timeout is None or effective < timeout)
            ):
                raise DeadlineExceededError(
                    f"request {self.req_id} missed its deadline "
                    "(still queued for a future epoch)"
                )
            raise TaskTimeoutError(
                f"request {self.req_id} unresolved after {timeout}s "
                "(still queued for a future epoch)"
            )
        if self._error is not None:
            raise self._error
        return self._response

    def add_done_callback(self, callback: Callable[["NetworkTicket"], None]) -> None:
        """Run ``callback(ticket)`` at settlement (reader thread), or now."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _settle(
        self,
        response: Optional[Response],
        coords: Optional[Tuple[int, int, int]],
        error: Optional[BaseException],
    ) -> None:
        with self._lock:
            if self._event.is_set():
                return  # exactly-once: replayed duplicates are no-ops
            self._response = response
            self._error = error
            if coords is not None:
                self.load_balancer, self.arrival, self.epoch = coords
            callbacks, self._callbacks = self._callbacks, None
            self._event.set()
        for callback in callbacks or ():
            callback(self)


class NetworkSnoopyClient:
    """Blocking TCP client for a :class:`~repro.serve.server.SnoopyServer`.

    Implements the :class:`~repro.core.client.SnoopyClient` protocol over
    the versioned wire format.  The deployment's geometry (object size,
    balancer count) is learned from the server's INIT frame right after
    the handshake, so construction needs only an address — and, against
    an attested server, the shared trust.

    Args:
        host / port: server address.
        timeout: default seconds the synchronous helpers wait for a
            response (``None`` waits forever).  The connect itself uses
            the same bound.
        manual_epochs: drive epochs with CLOSE_EPOCH from the
            synchronous helpers (for servers started with ``clock=False``).
        client_id: id stamped into generated requests; unique per client
            by default so responses are attributable.
        trust: the deployment's :class:`~repro.serve.secure.ServeTrust`
            (or its raw secret ``bytes``).  Enables the attested
            handshake and sealed channel; the client verifies the
            server's quote against the trusted front-end measurement.
        attested: explicit channel mode; defaults to ``trust is not
            None``.  A mode mismatch with the server fails closed.
        resume: open a server-side resumable session (default), the
            exactly-once reconnect story above.  ``False`` keeps the
            connection sessionless (a drop fails pending tickets).
        reconnect: :class:`ReconnectPolicy` (default policy if omitted).
        breaker: :class:`CircuitBreaker` (default breaker if omitted).
        request_timeout: per-request deadline in seconds; each submitted
            ticket inherits ``now + request_timeout``.
        ack_interval: acknowledge delivered responses every N frames so
            the server can trim its session replay buffer.
        injector: a :class:`~repro.core.faults.NetworkFaultInjector`
            consulted on every connect and send (chaos runs).
        link: this connection's link name in the injector's plan.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 30.0,
        manual_epochs: bool = False,
        client_id: Optional[int] = None,
        trust=None,
        attested: Optional[bool] = None,
        resume: bool = True,
        reconnect: Optional[ReconnectPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        request_timeout: Optional[float] = None,
        ack_interval: int = 64,
        injector=None,
        link: str = "client",
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.manual_epochs = manual_epochs
        self.client_id = (
            client_id if client_id is not None else next(_CLIENT_IDS)
        )
        if isinstance(trust, (bytes, bytearray)):
            trust = ServeTrust(bytes(trust))
        self.trust: Optional[ServeTrust] = trust
        self.attested = attested if attested is not None else trust is not None
        self.resume = resume
        self.reconnect_policy = (
            reconnect if reconnect is not None else ReconnectPolicy()
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.request_timeout = request_timeout
        self.ack_interval = ack_interval
        self._injector = injector
        self._link = link
        # req_id 0 is reserved: SHUTTING_DOWN frames use it for
        # connection-level (not per-request) notices.
        self._seq = itertools.count()
        self._req_ids = itertools.count(1)
        self._pending = {}
        self._send_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._admin_replies = queue.Queue()
        self._closed = False
        self._conn_error: Optional[BaseException] = None
        self._conn_ok = threading.Event()
        #: Bumped on every successful reconnect; admin round trips poll
        #: it so a reply lost in a drop is resent instead of timing out.
        self._conn_gen = 0
        self._session_id = 0
        self._last_delivery_seq = 0
        self._unacked = 0
        self.stats = {
            "reconnects": 0,
            "resent_requests": 0,
            "busy_rejections": 0,
            "shutdown_notices": 0,
            "acks_sent": 0,
            "duplicate_responses": 0,
            "channel_violations": 0,
        }

        self._transport = self._dial()
        if self.resume:
            self._open_session()
        self._conn_ok.set()
        self._reader = threading.Thread(
            target=self._read_loop, name="snoopy-netclient-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # SnoopyClient protocol
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> NetworkTicket:
        """Send one request; returns a ticket resolving at epoch close.

        ``load_balancer`` pins the request to a specific balancer (the
        differential tests need submission order to fix balancer
        assignment); by default the server's deployment picks one.

        Raises:
            CircuitOpenError: the breaker is open (recent outage; fail
                fast instead of queueing on a dead connection).
            ServiceUnavailableError: reconnection did not complete
                within the client timeout.
        """
        if self._closed:
            raise TransportError("client is closed")
        if not self.breaker.allow():
            raise CircuitOpenError(
                "connection circuit is open after repeated failures"
            )
        self._await_connected(self.timeout)
        deadline = (
            time.monotonic() + self.request_timeout
            if self.request_timeout is not None else None
        )
        pinned = load_balancer if load_balancer is not None else -1
        with self._send_lock:
            req_id = next(self._req_ids)
            ticket = NetworkTicket(req_id, request, deadline, pinned)
            self._pending[req_id] = ticket
            try:
                self._transport.send(
                    FrameKind.REQUEST,
                    encode_request(
                        req_id,
                        request,
                        self.value_size,
                        load_balancer=pinned,
                    ),
                )
            except TransportError:
                if not self.resume:
                    self._pending.pop(req_id, None)
                    raise
                # The reader thread notices the dead socket and
                # reconnects; the resumed session resends this ticket.
        return ticket

    def read(self, key: int) -> Optional[bytes]:
        """Read one object (one request, one epoch round trip)."""
        return self._sync_op(Request(
            op=OpType.READ, key=key,
            client_id=self.client_id, seq=next(self._seq),
        ))

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object; returns the prior contents."""
        return self._sync_op(Request(
            op=OpType.WRITE, key=key, value=value,
            client_id=self.client_id, seq=next(self._seq),
        ))

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Submit ``requests`` together and wait for all responses."""
        tickets = [self.submit(request) for request in requests]
        if self.manual_epochs and tickets:
            self.close_epoch()
        return [t.result(self.timeout) for t in tickets]

    def close(self) -> None:
        """Close the connection; unresolved tickets fail with TransportError."""
        if self._closed:
            return
        self._closed = True
        if self.resume and self._last_delivery_seq and self._conn_ok.is_set():
            try:  # parting ack lets the server trim its replay buffer
                with self._send_lock:
                    self._transport.send(
                        FrameKind.RESPONSE_ACK,
                        encode_u64(self._last_delivery_seq),
                    )
            except TransportError:
                pass
        self._conn_ok.set()  # release any waiter; they will see _closed
        self._transport.close()
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=10)

    def kill_connection(self) -> None:
        """Drop the TCP connection *without* closing the client (chaos).

        The reader thread observes the dead socket and runs the
        reconnect-and-resume path, exactly as for a real network fault.
        """
        self._transport.close()

    def __enter__(self) -> "NetworkSnoopyClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admin frames
    # ------------------------------------------------------------------
    def close_epoch(self, flush: bool = False) -> int:
        """Ask the server to close the current epoch; returns its number.

        With ``flush`` the server also drains every in-flight pipeline
        epoch before replying, so all earlier tickets are resolved.
        Retried transparently across a connection drop (the server may
        then close one extra — empty — epoch, which is harmless).
        """
        return decode_u64(
            self._admin_round_trip(
                FrameKind.CLOSE_EPOCH,
                encode_u32(1 if flush else 0),
                FrameKind.EPOCH_CLOSED,
            )
        )

    def ping(self) -> None:
        """Liveness round trip."""
        self._admin_round_trip(FrameKind.PING, b"", FrameKind.PONG)

    def _admin_round_trip(
        self, kind: int, payload: bytes, expect: int
    ) -> bytes:
        with self._admin_lock:
            attempts = self.reconnect_policy.max_attempts + 1
            for _ in range(attempts):
                self._await_connected(self.timeout)
                generation = self._conn_gen
                try:
                    with self._send_lock:
                        transport = self._transport
                        transport.send(kind, payload)
                except TransportError:
                    if not self.resume:
                        raise
                    # Retrying immediately would race the reader thread:
                    # _conn_ok is still set until it notices the dead
                    # socket, so a tight loop here can exhaust every
                    # attempt on the same broken connection before
                    # recovery even starts.  Force the drop to be
                    # observable, then wait for the *next* connection.
                    transport.close()
                    self._await_generation_change(generation)
                    continue  # the reader reconnected; resend
                reply_kind, reply = self._await_admin_reply(
                    kind, generation
                )
                if reply is None:
                    continue  # connection bounced mid-wait; resend
                if isinstance(reply, BaseException):
                    if self.resume and isinstance(reply, TransportError):
                        continue  # connection died mid-wait; retry
                    raise reply
                if reply_kind != expect:
                    raise WireError(
                        f"expected admin reply {expect}, got {reply_kind}"
                    )
                return reply
            raise ServiceUnavailableError(
                f"admin frame {kind} kept failing across "
                f"{attempts} reconnect attempts"
            )

    def _await_admin_reply(self, kind: int, generation: int):
        """Wait for an admin reply, polling for connection bounces.

        Returns ``(reply_kind, reply)``, or ``(None, None)`` when the
        connection was re-established mid-wait — the reply may have
        been lost with the old connection, so the caller must resend
        (admin frames are idempotent: a duplicate CLOSE_EPOCH closes
        one extra, empty, epoch).
        """
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None else None
        )
        while True:
            try:
                return self._admin_replies.get(timeout=0.2)
            except queue.Empty:
                if self._conn_gen != generation:
                    return None, None
                if deadline is not None and time.monotonic() >= deadline:
                    raise TaskTimeoutError(
                        f"no reply to admin frame {kind} within "
                        f"{self.timeout}s"
                    ) from None

    def _await_generation_change(self, generation: int) -> None:
        """Block until the reader has replaced the dead connection.

        Raises the terminal connection error if recovery failed, or
        :class:`~repro.errors.ServiceUnavailableError` if no new
        connection appears within the client timeout.
        """
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None else None
        )
        while self._conn_gen == generation:
            if self._closed:
                raise TransportError("client is closed")
            if self._conn_error is not None:
                raise self._conn_error
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceUnavailableError(
                    f"connection not re-established within {self.timeout}s"
                )
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _dial(self):
        """Dial + handshake + INIT; returns the live transport."""
        transport, _version, _peer_role = connect_transport(
            self.host, self.port, Role.CLIENT,
            trust=self.trust, attested=self.attested,
            expected_roles=(Role.SERVER,),
            timeout=self.timeout,
            injector=self._injector, link=self._link,
        )
        try:
            kind, payload = transport.recv()
            if kind == FrameKind.ERROR:
                raise WireError(payload.decode("utf-8", "replace"))
            if kind == FrameKind.VERSION_REJECT:
                raise WireError(
                    "server rejected our wire version: "
                    + payload.hex()
                )
            if kind == FrameKind.SHUTTING_DOWN:
                raise ServerShuttingDownError(
                    "server is shutting down; connect elsewhere"
                )
            if kind != FrameKind.INIT:
                raise WireError(
                    f"expected INIT after handshake, got kind {kind}"
                )
            value_size = decode_u32(payload[:4])
            num_load_balancers = decode_u32(payload[4:8])
        except BaseException:
            transport.close()
            raise
        if hasattr(self, "value_size"):
            if (value_size, num_load_balancers) != (
                self.value_size, self.num_load_balancers
            ):
                transport.close()
                raise WireError(
                    "server geometry changed across reconnect"
                )
        else:
            self.value_size = value_size
            self.num_load_balancers = num_load_balancers
        return transport

    def _open_session(self) -> None:
        """SESSION(0,0) on a fresh connection → adopt the server's id."""
        self._transport.send(FrameKind.SESSION, encode_session(0, 0))
        kind, payload = self._transport.recv()
        if kind == FrameKind.ERROR:
            raise WireError(payload.decode("utf-8", "replace"))
        if kind != FrameKind.SESSION_ACK:
            raise WireError(f"expected SESSION_ACK, got kind {kind}")
        self._session_id, _ = decode_session(payload)

    def _resume_session(self) -> None:
        """SESSION(id, last_seq) on a redialed connection.

        The ack implicitly trims everything we already delivered; the
        server replays the rest (the reader loop consumes the replayed
        RESPONSE frames after this returns).  Then every still-pending
        request is resent in ``req_id`` order — the server deduplicates
        the ones it already accepted, so per-balancer batch composition
        is unchanged and every ticket resolves exactly once.
        """
        self._transport.send(
            FrameKind.SESSION,
            encode_session(self._session_id, self._last_delivery_seq),
        )
        kind, payload = self._transport.recv()
        if kind == FrameKind.ERROR:
            message = payload.decode("utf-8", "replace")
            if "expired or unknown" in message:
                raise SessionExpiredError(message)
            raise WireError(message)
        if kind != FrameKind.SESSION_ACK:
            raise WireError(f"expected SESSION_ACK, got kind {kind}")
        for req_id in sorted(self._pending):
            ticket = self._pending[req_id]
            self._transport.send(
                FrameKind.REQUEST,
                encode_request(
                    req_id, ticket.request, self.value_size,
                    load_balancer=ticket.pinned,
                ),
            )
            self.stats["resent_requests"] += 1

    def _reconnect(self) -> bool:
        """Reader-thread recovery loop; True when a session is live again."""
        self._conn_ok.clear()
        self._transport.close()
        self.breaker.record_failure()
        last_error: Optional[BaseException] = None
        for delay in self.reconnect_policy.delays():
            if self._closed:
                return False
            time.sleep(delay)
            if not self.breaker.probe():
                continue
            try:
                with self._send_lock:
                    self._transport = self._dial()
                    self._resume_session()
                    # Drop stale admin markers queued before the outage.
                    while True:
                        try:
                            self._admin_replies.get_nowait()
                        except queue.Empty:
                            break
                    self.breaker.record_success()
                    self.stats["reconnects"] += 1
                    self._conn_gen += 1
                    self._conn_ok.set()
                return True
            except (SessionExpiredError, ServerShuttingDownError) as exc:
                self.breaker.record_failure()
                self._conn_error = exc
                return False
            except (TransportError, WireError, OSError) as exc:
                self.breaker.record_failure()
                last_error = exc
        self._conn_error = (
            last_error
            if last_error is not None
            else TransportError("reconnect attempts exhausted")
        )
        return False

    def _await_connected(self, timeout: Optional[float]) -> None:
        if not self._conn_ok.wait(timeout):
            raise ServiceUnavailableError(
                f"connection not re-established within {timeout}s"
            )
        if self._closed:
            raise TransportError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_op(self, request: Request) -> Optional[bytes]:
        ticket = self.submit(request)
        if self.manual_epochs:
            self.close_epoch()
        return ticket.result(self.timeout).value

    def _read_loop(self) -> None:
        while True:
            try:
                kind, payload = self._transport.recv()
            except (ReplayError, IntegrityError):
                # Sealed-channel violation: fail closed on this
                # connection, then recover on a fresh attested channel.
                self.stats["channel_violations"] += 1
                if self._handle_drop():
                    continue
                return
            except (TransportError, OSError) as exc:
                if self._handle_drop(exc):
                    continue
                return
            try:
                if self._dispatch(kind, payload):
                    continue
                return
            except (TransportError, OSError) as exc:
                # e.g. an ack write hit a (possibly injected) drop.
                if self._handle_drop(exc):
                    continue
                return
            except BaseException as exc:
                self._fail_pending(exc)
                return

    def _handle_drop(self, exc: Optional[BaseException] = None) -> bool:
        """Connection lost: recover (True) or settle everything (False)."""
        if self._closed:
            self._fail_pending(
                TransportError("client closed with requests in flight")
            )
            return False
        if self.resume and self._reconnect():
            return True
        error = self._conn_error
        if error is None:
            error = exc if exc is not None else TransportError(
                "connection lost"
            )
        self._fail_pending(error)
        return False

    def _dispatch(self, kind: int, payload: bytes) -> bool:
        """Handle one frame on the reader thread; False ends the loop."""
        if kind == FrameKind.RESPONSE:
            req_id, response, coords, delivery_seq = decode_response(
                payload, self.value_size
            )
            ticket = self._pending.pop(req_id, None)
            if ticket is not None:
                ticket._settle(response, coords, None)
            else:
                self.stats["duplicate_responses"] += 1
            if self.resume and delivery_seq:
                if delivery_seq > self._last_delivery_seq:
                    self._last_delivery_seq = delivery_seq
                self._unacked += 1
                if self._unacked >= self.ack_interval:
                    self._unacked = 0
                    self.stats["acks_sent"] += 1
                    with self._send_lock:
                        self._transport.send(
                            FrameKind.RESPONSE_ACK,
                            encode_u64(self._last_delivery_seq),
                        )
            return True
        if kind == FrameKind.BUSY:
            req_id = decode_u64(payload)
            ticket = self._pending.pop(req_id, None)
            self.stats["busy_rejections"] += 1
            if ticket is not None:
                ticket._settle(None, None, ServerBusyError(
                    f"server shed request {req_id} under load"
                ))
            return True
        if kind == FrameKind.SHUTTING_DOWN:
            req_id = decode_u64(payload) if payload else 0
            self.stats["shutdown_notices"] += 1
            ticket = self._pending.pop(req_id, None) if req_id else None
            if ticket is not None:
                ticket._settle(None, None, ServerShuttingDownError(
                    f"server is draining; request {req_id} was not accepted"
                ))
                return True
            # Connection-level notice: the server is going away for
            # good — not a retryable fault, so no reconnect.
            raise ServerShuttingDownError("server is shutting down")
        if kind in (FrameKind.EPOCH_CLOSED, FrameKind.PONG):
            self._admin_replies.put((kind, payload))
            return True
        if kind == FrameKind.SESSION_ACK:
            return True  # late ack from an overlapping resume; ignore
        if kind == FrameKind.ERROR:
            raise ReproError(
                "server error: " + payload.decode("utf-8", "replace")
            )
        raise WireError(f"unexpected frame kind {kind}")

    def _fail_pending(self, exc: BaseException) -> None:
        """Connection is gone: settle every outstanding wait with ``exc``."""
        self._conn_error = exc
        self._conn_ok.set()  # wake submitters; they observe _conn_error
        pending, self._pending = dict(self._pending), {}
        for ticket in pending.values():
            ticket._settle(None, None, exc)
        self._admin_replies.put((FrameKind.ERROR, exc))
