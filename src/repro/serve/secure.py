"""Attested, sealed transport for the serve layer (§3.1 over real TCP).

The paper's threat model requires every channel to be established via
remote attestation so clients "know they are communicating with
legitimate enclaves".  :mod:`repro.core.deployment` already models that
for the in-process wire; this module gives the *real* TCP front door
(:mod:`repro.serve.server`, :mod:`repro.serve.workers`,
:mod:`repro.serve.netclient`, :mod:`repro.serve.loadgen`) the same
guarantees:

1. **Hello** — the fixed-size v2 hello
   (:func:`repro.core.wire.encode_hello`) with the
   :data:`~repro.core.wire.HELLO_FLAG_ATTESTED` capability bit.  Both
   sides must agree on the mode; a mismatch fails closed at the
   handshake with an explicit error, never by silently downgrading to
   plaintext.
2. **Quote exchange** — one fixed-size ATTEST frame each way
   (:data:`~repro.core.wire.ATTEST_SIZE` payload bytes regardless of
   role or enclave name).  Enclave roles (server, worker, balancer)
   send an :class:`~repro.enclave.attestation.AttestationService` quote
   binding their measurement to a fresh 32-byte key share; the peer
   verifies it against the trusted Snoopy build measurements.  Plain
   clients send a bare key share (all-zero measurement/signature) —
   per the paper, clients authenticate *enclaves*, not vice versa;
   client authorization is an out-of-band concern.
3. **Sealed frames** — both shares derive one channel secret
   (``H(label || initiator_share || acceptor_share)``) keying a
   :class:`~repro.crypto.aead.SecureChannelPair`: two directed
   :class:`~repro.crypto.aead.SecureChannel` instances with counter
   nonces and a sliding replay window.  Every subsequent frame rides
   the sealed outer format ``nonce(12) | len(4) | sealed`` where
   ``sealed`` is the AEAD of an ordinary inner frame.  Inner frame
   shapes are unchanged and all sealing overhead is constant per
   frame, so ciphertext lengths remain functions of public quantities
   only — the transport stays oblivious (see SECURITY.md).

**Coalesced sealing.**  The async transport
(:class:`AsyncFrameTransport`, used by the server's response path and
the load generator) does not seal each inner frame separately: frames
queued within one event-loop iteration — e.g. a whole epoch's response
fan-out to one connection — are concatenated and sealed as *one* outer
record, greedily packed up to the outer record size limit.  One AEAD
pass and one replay-window nonce replace one per response.  The receiving
side (both transports) splits a record back into inner frames, so the
wire format is unchanged and either side may batch or not.  Record
sizes are sums of inner-frame sizes — still functions of public batch
shape only (see SECURITY.md).

**What the host still sees** — connection lifecycle, frame timing, and
frame counts.  All are public in the paper's model (epoch boundaries
and batch sizes are public functions of load), but they are real
observables; SECURITY.md's "Network-layer attestation" section
enumerates them.

**Chaos seam.**  :class:`FrameTransport` (the blocking transport used
by the sync client and the balancer→worker links) consults an optional
:class:`~repro.core.faults.NetworkFaultInjector` before every connect
and send, which is how the seeded network fault plan (drops, delays,
partitions, truncation, duplication, slow-loris handshakes) reaches
real sockets deterministically.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import socket
import struct
import time
from collections import deque
from typing import Iterable, List, Optional, Tuple

from repro.core.wire import (
    ATTEST_SIZE,
    FrameKind,
    HELLO_FLAG_ATTESTED,
    HELLO_SIZE,
    MAX_FRAME_PAYLOAD,
    Role,
    WireError,
    VersionMismatchError,
    decode_attest,
    decode_frame_header,
    decode_hello,
    decode_version_reject,
    encode_attest,
    encode_frame,
    encode_hello,
)
from repro.crypto.aead import NONCE_LEN, TAG_LEN, SecureChannelPair
from repro.crypto.keys import derive_key
from repro.enclave.attestation import AttestationService, Quote
from repro.enclave.model import Enclave
from repro.errors import AttestationError, TransportError
from repro.serve.protocol import (
    recv_exact,
    recv_frame,
    send_all,
    send_frame,
)
from repro.utils.validation import require

#: Domain-separation label mixed into every serve-layer channel secret.
CHANNEL_KEY_LABEL = b"snoopy/serve/channel"

#: Attestation-service key derivation label (from the deployment secret).
ATTEST_KEY_LABEL = "snoopy/serve/attest"

#: The program each enclave role runs (measurement = H(program name)).
#: All workers run the same subORAM program, so one measurement covers
#: every worker instance — exactly how MRENCLAVE works.
ROLE_PROGRAMS = {
    Role.SERVER: "snoopy-serve-frontend",
    Role.WORKER: "snoopy-serve-suboram",
    Role.BALANCER: "snoopy-serve-balancer",
}

#: Roles that must present (and verify) quotes.  CLIENT is absent:
#: clients contribute a bare key share and verify the enclave side only.
ENCLAVE_ROLES = frozenset(ROLE_PROGRAMS)

#: Roles that initiate connections (everyone else accepts).  Initiator
#: status picks the key-share ordering and the channel direction labels.
_INITIATOR_ROLES = frozenset((Role.CLIENT, Role.BALANCER))

_SEAL_LEN = struct.Struct(">I")

#: Ceiling on one sealed outer record: inner frame bytes + AEAD tag.
#: A record may carry *several* coalesced inner frames (see
#: :meth:`AsyncFrameTransport.send`) as long as their combined size
#: stays under this cap, so one AEAD seal amortizes over a whole
#: response flush.
_MAX_SEALED = MAX_FRAME_PAYLOAD + 64 + TAG_LEN

#: Inner-bytes budget for one coalesced sealed record.  Chosen so the
#: sealed ciphertext (``inner + TAG_LEN``) never exceeds
#: :data:`_MAX_SEALED`, and large enough that a single maximum-size
#: inner frame always fits on its own.
_RECORD_BUDGET = MAX_FRAME_PAYLOAD + 64


def _split_record(record: bytes) -> List[Tuple[int, bytes]]:
    """Split one unsealed record into its inner frames.

    A sealed record is the concatenation of one or more ordinary inner
    frames.  Raises :class:`~repro.core.wire.WireError` if the record
    is empty, a header is truncated, or trailing bytes do not form a
    complete frame — a sealed record must parse exactly.
    """
    from repro.core.wire import FRAME_HEADER_SIZE

    if not record:
        raise WireError("sealed record contains no frames")
    frames: List[Tuple[int, bytes]] = []
    view = memoryview(record)
    offset = 0
    total = len(record)
    while offset < total:
        kind, payload_len = decode_frame_header(
            view[offset:offset + FRAME_HEADER_SIZE]
        )
        start = offset + FRAME_HEADER_SIZE
        end = start + payload_len
        if end > total:
            raise WireError("sealed record truncates an inner frame")
        frames.append((kind, bytes(view[start:end])))
        offset = end
    return frames


class ServeTrust:
    """The serve layer's attestation root, shared by all participants.

    Wraps an :class:`~repro.enclave.attestation.AttestationService`
    keyed from a deployment secret and pre-trusts the measurements of
    the three Snoopy serve programs (front end, subORAM worker, load
    balancer).  Every server, worker, and *client* of one deployment
    holds the same ``ServeTrust`` — for clients this models "the
    attestation service's verification key and the expected release
    measurements are public knowledge"; the simulation's HMAC quotes
    make the verifier hold the signing secret too, which a production
    deployment would replace with asymmetric quotes (see SECURITY.md).

    Construct from any >= 16-byte secret::

        trust = ServeTrust(b"deployment-provisioning-secret")
        server = ServerThread(store, trust=trust)
        client = NetworkSnoopyClient(host, port, trust=trust)
    """

    def __init__(self, secret: bytes):
        require(isinstance(secret, (bytes, bytearray)),
                "ServeTrust secret must be bytes")
        secret = bytes(secret)
        require(len(secret) >= 16, "ServeTrust secret must be >= 16 bytes")
        self._secret = secret
        self.service = AttestationService(
            derive_key(secret, ATTEST_KEY_LABEL)
        )
        self._measurements = {}
        for role, program in ROLE_PROGRAMS.items():
            measurement = hashlib.sha256(
                f"snoopy-program:{program}".encode()
            ).digest()
            self._measurements[role] = measurement
            self.service.trust(measurement)

    @property
    def secret(self) -> bytes:
        """The deployment secret (to provision workers/clients)."""
        return self._secret

    def enclave(self, role: int, instance: int = 0) -> Enclave:
        """The enclave identity an instance of ``role`` attests as.

        The name carries the instance index (public deployment fact);
        the measurement is the *program* hash shared by every instance
        of the role, so trusting one release build admits all its
        replicas.
        """
        require(role in ROLE_PROGRAMS,
                f"role {role} is not an enclave role")
        program = ROLE_PROGRAMS[role]
        return Enclave(
            f"{program}-{instance}", measurement=self._measurements[role]
        )

    def quote_payload(self, enclave: Enclave, key_share: bytes) -> bytes:
        """Encode this enclave's ATTEST payload binding ``key_share``."""
        quote = self.service.quote(enclave, key_share)
        return encode_attest(
            quote.enclave_name, quote.measurement,
            quote.key_share, quote.signature,
        )

    def verify_payload(self, payload: bytes) -> bytes:
        """Verify a peer enclave's ATTEST payload; returns its key share.

        Raises :class:`~repro.errors.AttestationError` on a bad
        signature or an untrusted measurement.
        """
        name, measurement, key_share, signature = decode_attest(payload)
        return self.service.verify(
            Quote(name, measurement, key_share, signature)
        )

    @classmethod
    def for_store(cls, store) -> "ServeTrust":
        """Derive trust from an in-process store's keychain master.

        Convenience for single-operator deployments and tests: the
        party holding the store secrets can mint the serve trust root.
        """
        return cls(derive_key(store.keychain.master, "snoopy/serve/trust"))


def _client_attest_payload(key_share: bytes) -> bytes:
    """A plain client's ATTEST payload: bare share, zero quote fields."""
    return encode_attest("snoopy-client", b"\x00" * 32, key_share, b"\x00" * 32)


def derive_channel_pair(
    my_share: bytes,
    peer_share: bytes,
    *,
    initiator: bool,
    link_name: str = "serve",
) -> SecureChannelPair:
    """Derive one endpoint's channel pair from the exchanged shares."""
    i_share, a_share = (
        (my_share, peer_share) if initiator else (peer_share, my_share)
    )
    key = hashlib.sha256(CHANNEL_KEY_LABEL + i_share + a_share).digest()
    return SecureChannelPair(key, link_name, initiator=initiator)


def _check_peer(
    peer_role: int,
    peer_flags: int,
    attested: bool,
    expected_roles: Optional[Iterable[int]],
) -> None:
    if expected_roles is not None and peer_role not in tuple(expected_roles):
        raise WireError(f"unexpected peer role {peer_role}")
    peer_attested = bool(peer_flags & HELLO_FLAG_ATTESTED)
    if attested and not peer_attested:
        raise WireError(
            "peer offered a plaintext channel but this endpoint requires "
            "attested channels"
        )
    if not attested and peer_attested:
        raise WireError(
            "peer requires attested channels but this endpoint is "
            "configured for plaintext"
        )


def _finish_attest(
    role: int,
    peer_role: int,
    peer_kind: int,
    peer_payload: bytes,
    trust: Optional[ServeTrust],
    my_share: bytes,
    link_name: str,
) -> SecureChannelPair:
    """Common tail of the quote exchange once the peer's frame arrived."""
    if peer_kind == FrameKind.VERSION_REJECT:
        offered, supported = decode_version_reject(peer_payload)
        raise VersionMismatchError(offered, supported)
    if peer_kind == FrameKind.ERROR:
        raise WireError(
            f"peer rejected handshake: {peer_payload.decode('utf-8', 'replace')}"
        )
    if peer_kind != FrameKind.ATTEST:
        raise WireError(
            f"expected ATTEST frame during handshake, got kind {peer_kind}"
        )
    if len(peer_payload) != ATTEST_SIZE:
        raise WireError("attest payload has the wrong size")
    if peer_role in ENCLAVE_ROLES:
        if trust is None:
            raise AttestationError(
                "peer presented a quote but no ServeTrust is configured"
            )
        peer_share = trust.verify_payload(peer_payload)
    else:
        # Clients are not attested; take the bare share.
        _name, _measurement, peer_share, _sig = decode_attest(peer_payload)
    return derive_channel_pair(
        my_share, peer_share,
        initiator=role in _INITIATOR_ROLES,
        link_name=link_name,
    )


def _my_attest_payload(
    role: int,
    trust: Optional[ServeTrust],
    enclave: Optional[Enclave],
    my_share: bytes,
) -> bytes:
    if role in ENCLAVE_ROLES:
        if trust is None:
            raise AttestationError(
                f"role {role} must attest but no ServeTrust is configured"
            )
        if enclave is None:
            enclave = trust.enclave(role)
        return trust.quote_payload(enclave, my_share)
    return _client_attest_payload(my_share)


def _dribble_hello(sock: socket.socket, hello: bytes, delay_s: float) -> None:
    """Send a hello in four fragments with pauses (slow-loris chaos)."""
    step = max(1, len(hello) // 4)
    for offset in range(0, len(hello), step):
        send_all(sock, hello[offset:offset + step])
        time.sleep(delay_s)


def secure_handshake(
    sock: socket.socket,
    role: int,
    *,
    trust: Optional[ServeTrust] = None,
    enclave: Optional[Enclave] = None,
    attested: Optional[bool] = None,
    expected_roles: Optional[Iterable[int]] = None,
    link_name: str = "serve",
    dribble_s: float = 0.0,
) -> Tuple[int, int, Optional[SecureChannelPair]]:
    """Run the (optionally attested) handshake on a blocking socket.

    Both sides send their hello eagerly; in attested mode both then
    send their ATTEST frame eagerly too (all fixed-size, so no ordering
    deadlock).  Returns ``(version, peer_role, channel_pair)`` where
    ``channel_pair`` is ``None`` for a plaintext connection.

    Raises:
        VersionMismatchError: version skew (either detected locally
            from the peer's hello, or relayed from the peer's
            structured ``VERSION_REJECT``).
        WireError: malformed peer, role mismatch, or attested/plaintext
            mode mismatch (fails closed — no silent downgrade).
        AttestationError: the peer's quote did not verify.
        TransportError: the peer vanished mid-handshake.
    """
    if attested is None:
        attested = trust is not None
    flags = HELLO_FLAG_ATTESTED if attested else 0
    hello = encode_hello(role, flags=flags)
    if dribble_s > 0.0:
        _dribble_hello(sock, hello, dribble_s)
    else:
        send_all(sock, hello)
    version, peer_role, peer_flags = decode_hello(
        recv_exact(sock, HELLO_SIZE)
    )
    _check_peer(peer_role, peer_flags, attested, expected_roles)
    if not attested:
        return version, peer_role, None
    my_share = os.urandom(32)
    send_frame(
        sock, FrameKind.ATTEST,
        _my_attest_payload(role, trust, enclave, my_share),
    )
    peer_kind, peer_payload = recv_frame(sock)
    pair = _finish_attest(
        role, peer_role, peer_kind, peer_payload, trust, my_share, link_name
    )
    return version, peer_role, pair


async def secure_handshake_async(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    role: int,
    *,
    trust: Optional[ServeTrust] = None,
    enclave: Optional[Enclave] = None,
    attested: Optional[bool] = None,
    expected_roles: Optional[Iterable[int]] = None,
    link_name: str = "serve",
    timeout: Optional[float] = None,
) -> Tuple[int, int, Optional[SecureChannelPair]]:
    """Asyncio variant of :func:`secure_handshake`.

    ``timeout`` bounds each read so a slow-loris peer (dribbling its
    hello byte by byte) ties up one coroutine for at most ``timeout``
    seconds instead of forever; expiry raises
    :class:`~repro.errors.TransportError`.
    """
    if attested is None:
        attested = trust is not None
    flags = HELLO_FLAG_ATTESTED if attested else 0
    writer.write(encode_hello(role, flags=flags))
    await writer.drain()

    async def _read(n: int) -> bytes:
        try:
            if timeout is not None:
                return await asyncio.wait_for(reader.readexactly(n), timeout)
            return await reader.readexactly(n)
        except asyncio.TimeoutError as exc:
            raise TransportError("handshake timed out") from exc
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise TransportError(
                f"connection lost mid-handshake: {exc}"
            ) from exc

    version, peer_role, peer_flags = decode_hello(await _read(HELLO_SIZE))
    _check_peer(peer_role, peer_flags, attested, expected_roles)
    if not attested:
        return version, peer_role, None
    my_share = os.urandom(32)
    writer.write(encode_frame(
        FrameKind.ATTEST,
        _my_attest_payload(role, trust, enclave, my_share),
    ))
    await writer.drain()
    from repro.core.wire import FRAME_HEADER_SIZE

    peer_kind, length = decode_frame_header(await _read(FRAME_HEADER_SIZE))
    peer_payload = await _read(length) if length else b""
    pair = _finish_attest(
        role, peer_role, peer_kind, peer_payload, trust, my_share, link_name
    )
    return version, peer_role, pair


# ---------------------------------------------------------------------------
# Transports: uniform frame I/O over plaintext or sealed connections
# ---------------------------------------------------------------------------
class FrameTransport:
    """Blocking framed connection, optionally sealed, optionally chaotic.

    Owns the socket after the handshake.  ``send``/``recv`` move whole
    inner frames; when a :class:`~repro.crypto.aead.SecureChannelPair`
    is attached, each frame travels as ``nonce | len | sealed`` and
    tampering/replay surface as :class:`~repro.errors.IntegrityError` /
    :class:`~repro.errors.ReplayError` (never retried).

    When a :class:`~repro.core.faults.NetworkFaultInjector` and link
    name are attached, every send consults the seeded plan first — the
    single choke point all serve-layer chaos flows through.
    """

    def __init__(self, sock: socket.socket,
                 pair: Optional[SecureChannelPair] = None,
                 injector=None, link: Optional[str] = None):
        self._sock = sock
        self._pair = pair
        self._injector = injector
        self._link = link if link is not None else "link"
        # Inner frames already unsealed from a coalesced record but not
        # yet handed to the caller (the peer may pack several frames
        # into one sealed record).
        self._rx_pending: deque = deque()

    @property
    def attested(self) -> bool:
        """True when frames ride the sealed channel."""
        return self._pair is not None

    @property
    def socket(self) -> socket.socket:
        """The underlying TCP socket (for address introspection)."""
        return self._sock

    def _encode(self, kind: int, payload: bytes) -> bytes:
        frame = encode_frame(kind, payload)
        if self._pair is None:
            return frame
        nonce, sealed = self._pair.tx.send(frame)
        return nonce + _SEAL_LEN.pack(len(sealed)) + sealed

    def send(self, kind: int, payload: bytes = b"") -> None:
        """Send one frame, applying any scheduled network fault."""
        event = None
        if self._injector is not None:
            try:
                event = self._injector.on_send(self._link)
            except TransportError:
                self.close()
                raise
        data = self._encode(kind, payload)
        if event is None:
            send_all(self._sock, data)
            return
        if event.kind == "conn_drop":
            self.close()
            raise TransportError(
                f"injected fault: connection on {self._link!r} dropped"
            )
        if event.kind == "frame_truncate":
            try:
                send_all(self._sock, data[: max(1, len(data) // 2)])
            finally:
                self.close()
            raise TransportError(
                f"injected fault: frame on {self._link!r} truncated"
            )
        if event.kind == "frame_duplicate":
            send_all(self._sock, data)
            send_all(self._sock, data)
            return
        send_all(self._sock, data)

    def recv(self) -> Tuple[int, bytes]:
        """Receive one frame; returns ``(kind, payload)``.

        A sealed record may carry several coalesced inner frames; the
        extras are buffered and returned by subsequent calls without
        touching the socket.
        """
        if self._rx_pending:
            return self._rx_pending.popleft()
        if self._pair is None:
            return recv_frame(self._sock)
        nonce = recv_exact(self._sock, NONCE_LEN)
        (length,) = _SEAL_LEN.unpack(recv_exact(self._sock, _SEAL_LEN.size))
        if length > _MAX_SEALED:
            raise WireError(f"sealed frame of {length} bytes exceeds cap")
        sealed = recv_exact(self._sock, length)
        record = self._pair.rx.receive(nonce, sealed)
        self._rx_pending.extend(_split_record(record))
        return self._rx_pending.popleft()

    def settimeout(self, timeout: Optional[float]) -> None:
        """Set the socket timeout for subsequent blocking calls."""
        self._sock.settimeout(timeout)

    def close(self) -> None:
        """Close the connection, waking any reader blocked on recv()."""
        # shutdown() first so a recv() blocked on another thread wakes
        # with EOF instead of hanging on a silently-deallocated fd.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


def connect_transport(
    host: str,
    port: int,
    role: int,
    *,
    trust: Optional[ServeTrust] = None,
    enclave: Optional[Enclave] = None,
    attested: Optional[bool] = None,
    expected_roles: Optional[Iterable[int]] = None,
    link_name: str = "serve",
    timeout: Optional[float] = None,
    injector=None,
    link: Optional[str] = None,
) -> Tuple[FrameTransport, int, int]:
    """Dial, handshake, and wrap a serve-layer connection.

    Consults the network fault injector for connect-time events
    (partition refusals, slow-loris handshakes) before dialing.
    Returns ``(transport, version, peer_role)``.
    """
    dribble_s = 0.0
    if injector is not None:
        event = injector.on_connect(link if link is not None else "link")
        if event is not None and event.kind == "slow_handshake":
            dribble_s = event.delay_s
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
    try:
        version, peer_role, pair = secure_handshake(
            sock, role,
            trust=trust, enclave=enclave, attested=attested,
            expected_roles=expected_roles, link_name=link_name,
            dribble_s=dribble_s,
        )
    except BaseException:
        sock.close()
        raise
    return FrameTransport(sock, pair, injector=injector, link=link), version, peer_role


class AsyncFrameTransport:
    """Asyncio counterpart of :class:`FrameTransport` (server, loadgen).

    ``send`` buffers on the writer (callers drain when they need
    flow-control); ``recv`` awaits one whole frame.  The wire format is
    compatible with the blocking transport, so either end of a link may
    be sync or async.

    **Coalesced sealing.**  In sealed mode, ``send`` does not seal
    per frame: it queues the encoded inner frame and schedules one
    flush on the event loop (``call_soon``).  Every frame queued in the
    same loop iteration — e.g. the whole response fan-out when an epoch
    completes — is packed into as few sealed records as the
    :data:`_RECORD_BUDGET` allows and sealed *once per record* instead
    of once per frame.  ``drain``/``close`` flush eagerly, so callers
    that await :meth:`drain` keep their flow-control semantics.
    Observable flush sizes remain functions of public quantities only
    (batch size and epoch boundaries are public in the paper's model;
    see SECURITY.md).  ``sealed_flushes``/``sealed_frames`` count the
    amortization achieved.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 pair: Optional[SecureChannelPair] = None):
        self._reader = reader
        self._writer = writer
        self._pair = pair
        self._rx_pending: deque = deque()
        self._tx_frames: List[bytes] = []
        self._flush_scheduled = False
        #: Number of sealed records written (one AEAD call each).
        self.sealed_flushes = 0
        #: Number of inner frames those records carried.
        self.sealed_frames = 0

    @property
    def attested(self) -> bool:
        """True when frames ride the sealed channel."""
        return self._pair is not None

    @property
    def writer(self) -> asyncio.StreamWriter:
        """The underlying asyncio stream writer."""
        return self._writer

    def is_closing(self) -> bool:
        """True once the underlying writer has started closing."""
        return self._writer.is_closing()

    def send(self, kind: int, payload: bytes = b"") -> None:
        """Queue one frame (coalesced into sealed records when attested)."""
        frame = encode_frame(kind, payload)
        if self._pair is None:
            self._writer.write(frame)
            return
        self._tx_frames.append(frame)
        if self._flush_scheduled:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # No running loop (sync test harness): seal immediately.
            self._flush_tx()
            return
        self._flush_scheduled = True
        loop.call_soon(self._flush_tx)

    def _flush_tx(self) -> None:
        """Seal all queued inner frames into records and write them."""
        self._flush_scheduled = False
        frames = self._tx_frames
        if not frames or self._pair is None:
            return
        self._tx_frames = []
        group: List[bytes] = []
        group_size = 0
        for frame in frames:
            if group and group_size + len(frame) > _RECORD_BUDGET:
                self._seal_record(group)
                group, group_size = [], 0
            group.append(frame)
            group_size += len(frame)
        if group:
            self._seal_record(group)

    def _seal_record(self, group: List[bytes]) -> None:
        nonce, sealed = self._pair.tx.send(b"".join(group))
        self._writer.write(nonce + _SEAL_LEN.pack(len(sealed)) + sealed)
        self.sealed_flushes += 1
        self.sealed_frames += len(group)

    async def drain(self) -> None:
        """Flush the write buffer; raises TransportError on a dead peer."""
        self._flush_tx()
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError(f"connection lost mid-write: {exc}") from exc

    async def _read(self, n: int) -> bytes:
        try:
            return await self._reader.readexactly(n)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise TransportError(f"connection lost mid-read: {exc}") from exc

    async def recv(self) -> Tuple[int, bytes]:
        """Receive one frame; returns ``(kind, payload)``.

        Extra frames from a coalesced sealed record are buffered and
        returned by subsequent calls without touching the stream.
        """
        if self._rx_pending:
            return self._rx_pending.popleft()
        if self._pair is None:
            from repro.serve.protocol import read_frame_async

            return await read_frame_async(self._reader)
        nonce = await self._read(NONCE_LEN)
        (length,) = _SEAL_LEN.unpack(await self._read(_SEAL_LEN.size))
        if length > _MAX_SEALED:
            raise WireError(f"sealed frame of {length} bytes exceeds cap")
        sealed = await self._read(length)
        record = self._pair.rx.receive(nonce, sealed)
        self._rx_pending.extend(_split_record(record))
        return self._rx_pending.popleft()

    def close(self) -> None:
        """Close the underlying writer, ignoring teardown races."""
        try:
            if not self._writer.is_closing():
                self._flush_tx()
        except (OSError, RuntimeError):  # pragma: no cover - best-effort
            pass
        try:
            self._writer.close()
        except (OSError, RuntimeError):  # pragma: no cover - best-effort
            pass
