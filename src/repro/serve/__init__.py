"""The network front door: serve a Snoopy deployment over TCP.

This package turns the in-process deployment into a service with the
same client surface (:class:`~repro.core.client.SnoopyClient`):

* :class:`~repro.serve.server.SnoopyServer` — asyncio load-balancer
  front end feeding the epoch pipeline, with per-connection
  backpressure (:class:`~repro.serve.server.ServerThread` hosts it on a
  background loop for blocking callers).
* :class:`~repro.serve.workers.WorkerCluster` — subORAM worker
  *processes* behind the versioned wire protocol, with sealed-snapshot
  crash recovery and transactional epoch retry
  (:class:`~repro.serve.workers.RemoteSubOram` is the in-server proxy).
* :class:`~repro.serve.netclient.NetworkSnoopyClient` — blocking TCP
  client implementing the protocol.
* :func:`~repro.serve.loadgen.run_loadgen` — asyncio load generator
  for throughput/latency measurement over real TCP.

Everything speaks :mod:`repro.core.wire`: fixed-size frames behind a
version-checked hello handshake.
"""

from repro.serve.loadgen import run_loadgen, run_loadgen_async
from repro.serve.netclient import NetworkSnoopyClient, NetworkTicket
from repro.serve.server import ServerThread, SnoopyServer
from repro.serve.workers import RemoteSubOram, WorkerCluster

__all__ = [
    "NetworkSnoopyClient",
    "NetworkTicket",
    "RemoteSubOram",
    "ServerThread",
    "SnoopyServer",
    "WorkerCluster",
    "run_loadgen",
    "run_loadgen_async",
]
