"""The asyncio load-balancer front door: ``SnoopyServer``.

One server process hosts a full :class:`~repro.core.snoopy.Snoopy`
deployment behind TCP.  Client connections speak the versioned
:mod:`repro.core.wire` protocol: a fixed-size hello handshake — by
default upgraded to the attested quote exchange of
:mod:`repro.serve.secure`, after which every frame rides a sealed
replay-protected channel — then a stream of fixed-size REQUEST frames
in and RESPONSE frames out.  Every request becomes a non-blocking
``submit()`` into the deployment's
:class:`~repro.core.pipeline.EpochPipeline`; the pipeline's match thread
resolves the ticket and the completion bridges back onto the event loop
through :meth:`Ticket.add_done_callback
<repro.core.tickets.Ticket.add_done_callback>` +
``loop.call_soon_threadsafe`` — the server never blocks on an epoch.

**Epoch pacing.**  In production mode (``clock=True``) the pipeline's
background clock closes epochs on the fixed public period
``epoch_duration`` — arrival timing never shapes when traffic flows,
the property Cloak-style timing leakage arguments require.  Tests and
differential runs pass ``clock=False`` and drive epochs explicitly with
the CLOSE_EPOCH admin frame, keeping epoch composition deterministic.

**Backpressure and load shedding.**  Each connection carries an
``asyncio.Semaphore(max_pending_per_connection)``: a REQUEST frame is
only read off the socket after acquiring a slot, and the slot frees when
its RESPONSE resolves.  A client that outruns the epoch pipeline
therefore stops being *read* — TCP flow control pushes back to the
sender — while the pipeline's own :class:`~threading.BoundedSemaphore`
depth cap independently skips clock ticks and lets batches grow (§6's
backpressure-by-bigger-batches, not queueing).  A server-wide
``max_open_tickets`` ceiling additionally *sheds* load with a typed
BUSY frame once the whole deployment (not just one connection) is
saturated, so overload degrades into fast rejections instead of
unbounded queueing.

**Resumable sessions.**  A client that sends a SESSION frame gets a
server-held session: accepted request ids are tracked for
deduplication, and resolved responses are buffered (with a per-session
delivery sequence number) until the client acknowledges them with
RESPONSE_ACK.  If the connection drops, the client reconnects, resumes
the session, and the server replays every undelivered response —
:class:`~repro.serve.netclient.NetworkSnoopyClient` builds its
exactly-once reconnect story on this.  Connections that never send
SESSION (e.g. the fire-hose load generator) remain cheap and
sessionless.

**Graceful shutdown.**  ``aclose()`` drains: the listener closes, new
REQUESTs are answered with a typed SHUTTING_DOWN frame, in-flight
epochs flush so every accepted ticket resolves and is delivered, then
every connection receives a final SHUTTING_DOWN broadcast before the
sockets close — no silently dropped work.

**What the network layer makes public** (see SECURITY.md): connection
counts and lifetimes, the fixed epoch cadence, and message sizes — all
of which are functions of public configuration, never of keys or values
(request/response frames are fixed-size per the store's value size, and
the sealed channel adds a constant overhead per frame).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Dict, Optional, Set

from repro.core.wire import (
    FrameKind,
    Role,
    SUPPORTED_WIRE_VERSIONS,
    VersionMismatchError,
    WireError,
    decode_request,
    decode_session,
    decode_u32,
    decode_u64,
    encode_response,
    encode_session,
    encode_u32,
    encode_u64,
    encode_version_reject,
)
from repro.errors import (
    AttestationError,
    ConfigurationError,
    IntegrityError,
    ReplayError,
    TransportError,
)
from repro.serve.protocol import write_frame
from repro.serve.secure import (
    AsyncFrameTransport,
    ServeTrust,
    secure_handshake_async,
)


class _Session:
    """Server-side state of one resumable client session."""

    __slots__ = (
        "session_id", "seen", "buffer", "next_seq", "transport",
    )

    def __init__(self, session_id: int):
        self.session_id = session_id
        #: Request ids accepted and not yet acknowledged (dedupe set for
        #: resent requests after a reconnect).
        self.seen: Set[int] = set()
        #: Undelivered/unacknowledged responses: (seq, req_id, payload).
        self.buffer = deque()
        #: Next delivery sequence number (1-based; 0 means "nothing").
        self.next_seq = 1
        #: The currently attached transport, if any.
        self.transport: Optional[AsyncFrameTransport] = None

    def ack(self, seq: int) -> None:
        """Drop buffered responses delivered through ``seq``."""
        while self.buffer and self.buffer[0][0] <= seq:
            _seq, req_id, _payload = self.buffer.popleft()
            self.seen.discard(req_id)


class SnoopyServer:
    """Serve a :class:`~repro.core.snoopy.Snoopy` deployment over TCP.

    Args:
        store: an initialized deployment.  Its backend must support
            shared state (``serial``/``thread``) — the pipeline and any
            :class:`~repro.serve.workers.RemoteSubOram` proxies live in
            this process.
        host / port: bind address (port 0 picks a free port; the bound
            port is on :attr:`port` after :meth:`start`).
        clock: run the pipeline's background epoch clock (production).
            With ``False``, epochs close only on CLOSE_EPOCH admin
            frames — the deterministic mode tests use.
        epoch_duration: clock period override in seconds.
        pipeline_depth: max in-flight epochs (default from config).
        max_pending_per_connection: per-connection open-ticket cap; the
            backpressure window described in the module docstring.
        attested: require the attested quote exchange and sealed frames
            on every connection (default).  ``False`` serves plaintext
            (benchmark baselines; a mode mismatch with a client fails
            closed at the handshake).
        trust: the deployment's :class:`~repro.serve.secure.ServeTrust`.
            Defaults to ``ServeTrust.for_store(store)`` when attested —
            hand the same object (or its secret) to clients and
            workers.
        handshake_timeout: seconds a connection may spend in the
            handshake before being cut (slow-loris defence).
        max_open_tickets: server-wide open-ticket ceiling; beyond it new
            requests are shed with BUSY frames.  ``None`` = no shedding
            (per-connection backpressure still applies).
        session_buffer_cap: per-session cap on buffered undelivered
            responses; a session that exceeds it (client gone for many
            epochs without acking) is expired.
        max_sessions: cap on concurrently held sessions; creating one
            past the cap evicts the oldest detached session.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        clock: bool = True,
        epoch_duration: Optional[float] = None,
        pipeline_depth: Optional[int] = None,
        max_pending_per_connection: int = 1024,
        attested: bool = True,
        trust: Optional[ServeTrust] = None,
        handshake_timeout: Optional[float] = 10.0,
        max_open_tickets: Optional[int] = None,
        session_buffer_cap: int = 4096,
        max_sessions: int = 256,
    ):
        if not store.backend.supports_shared_state:
            raise ConfigurationError(
                "SnoopyServer needs a shared-state backend "
                "(serial/thread): the epoch pipeline, ticket callbacks "
                "and worker sockets all live in the server process"
            )
        if max_pending_per_connection < 1:
            raise ConfigurationError(
                "max_pending_per_connection must be >= 1"
            )
        if max_open_tickets is not None and max_open_tickets < 1:
            raise ConfigurationError("max_open_tickets must be >= 1")
        if session_buffer_cap < 1:
            raise ConfigurationError("session_buffer_cap must be >= 1")
        self._store = store
        self._host = host
        self._requested_port = port
        self._clock = clock
        self._epoch_duration = epoch_duration
        self._pipeline_depth = pipeline_depth
        self.max_pending_per_connection = max_pending_per_connection
        self.attested = attested
        self.trust = (
            trust if trust is not None
            else (ServeTrust.for_store(store) if attested else None)
        )
        self._enclave = (
            self.trust.enclave(Role.SERVER) if self.trust is not None else None
        )
        self.handshake_timeout = handshake_timeout
        self.max_open_tickets = max_open_tickets
        self.session_buffer_cap = session_buffer_cap
        self.max_sessions = max_sessions
        self.telemetry = store.telemetry
        self.pipeline = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._open_tickets = 0
        self._draining = False
        self._sessions: Dict[int, _Session] = {}
        self._next_session_id = 1
        self._transports: Set[AsyncFrameTransport] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self.stats = {
            "connections": 0,
            "requests": 0,
            "responses": 0,
            "epochs": 0,
            "version_mismatches": 0,
            "peak_open_tickets": 0,
            "sessions": 0,
            "session_resumes": 0,
            "replayed_responses": 0,
            "duplicate_requests": 0,
            "busy_rejections": 0,
            "shed_while_draining": 0,
            "channel_violations": 0,
            "handshake_failures": 0,
        }

    @property
    def value_size(self) -> int:
        """The store's fixed object size (sets every frame's length)."""
        return self._store.config.value_size

    @property
    def draining(self) -> bool:
        """True once shutdown started (new requests are shed)."""
        return self._draining

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SnoopyServer":
        """Start the epoch pipeline and begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        self.pipeline = self._store.start_pipeline(
            depth=self._pipeline_depth,
            clock=self._clock,
            epoch_duration=self._epoch_duration,
        )
        self.pipeline.add_epoch_observer(self._observe_epoch)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled/closed."""
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, notify, close.

        With ``drain`` (default): requests arriving from here on are
        answered with SHUTTING_DOWN frames; the pipeline stops *and
        flushes*, so every already-accepted ticket resolves and its
        response is written (or buffered for a resumed session); then
        every live connection gets a final SHUTTING_DOWN broadcast and
        is closed.  With ``drain=False`` the pipeline still flushes
        (that is what ``EpochPipeline.stop`` does) but no notification
        frames are sent — the PR 6 behaviour.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pipeline is not None and self.pipeline.active:
            # stop() flushes; run it off-loop so pending ticket
            # callbacks can still land on the loop while it drains.
            await asyncio.get_running_loop().run_in_executor(
                None, self.pipeline.stop
            )
        # The executor result arrives on the loop *after* every ticket
        # callback the matcher scheduled, so all deliverable responses
        # are in the write buffers by now.
        if drain:
            for transport in list(self._transports):
                if transport.is_closing():
                    continue
                try:
                    transport.send(FrameKind.SHUTTING_DOWN)
                    await transport.drain()
                except (TransportError, ConnectionError, OSError):
                    pass
        for transport in list(self._transports):
            transport.close()
        if self._conn_tasks:
            # Let the per-connection tasks observe their closed sockets
            # and exit cleanly instead of dying cancelled at loop close.
            await asyncio.wait(self._conn_tasks, timeout=5)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        transport: Optional[AsyncFrameTransport] = None
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            try:
                _version, _role, pair = await secure_handshake_async(
                    reader, writer, Role.SERVER,
                    trust=self.trust,
                    enclave=self._enclave,
                    attested=self.attested,
                    expected_roles=(Role.CLIENT,),
                    timeout=self.handshake_timeout,
                )
            except VersionMismatchError as exc:
                self.stats["version_mismatches"] += 1
                self.telemetry.counter(
                    "serve_version_mismatches_total"
                ).inc()
                # Structured reject: the client learns what it offered
                # *and* what this server supports (plaintext frame — no
                # channel exists yet).
                await self._send_plain(
                    writer, FrameKind.VERSION_REJECT,
                    encode_version_reject(
                        exc.offered, SUPPORTED_WIRE_VERSIONS
                    ),
                )
                return
            except AttestationError as exc:
                self.stats["handshake_failures"] += 1
                self.telemetry.counter(
                    "serve_attestation_failures_total"
                ).inc()
                await self._send_plain(
                    writer, FrameKind.ERROR,
                    str(exc).encode("utf-8", "replace"),
                )
                return
            except WireError as exc:
                self.stats["handshake_failures"] += 1
                await self._send_plain(
                    writer, FrameKind.ERROR,
                    str(exc).encode("utf-8", "replace"),
                )
                return
            except TransportError:
                # Vanished or slow-loris'd past the handshake timeout.
                self.stats["handshake_failures"] += 1
                self.telemetry.counter(
                    "serve_handshake_timeouts_total"
                ).inc()
                return
            transport = AsyncFrameTransport(reader, writer, pair)
            self._transports.add(transport)
            self.stats["connections"] += 1
            self.telemetry.counter("serve_connections_total").inc()
            self.telemetry.gauge("serve_connections_open").inc()
            # Public deployment shape, so clients need no out-of-band
            # configuration: value size (frame geometry) + balancer count.
            transport.send(
                FrameKind.INIT,
                encode_u32(self.value_size)
                + encode_u32(self._store.config.num_load_balancers),
            )
            await transport.drain()
            try:
                await self._serve_frames(transport)
            finally:
                self.telemetry.gauge("serve_connections_open").inc(-1)
        finally:
            self._conn_tasks.discard(task)
            if transport is not None:
                self._transports.discard(transport)
                for session in self._sessions.values():
                    if session.transport is transport:
                        session.transport = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_frames(self, transport: AsyncFrameTransport) -> None:
        """The per-connection frame loop (post-handshake)."""
        pending = asyncio.Semaphore(self.max_pending_per_connection)
        value_size = self.value_size
        session: Optional[_Session] = None
        while True:
            try:
                kind, payload = await transport.recv()
            except TransportError:
                return  # client went away; its submitted epochs still run
            except (ReplayError, IntegrityError):
                # Sealed-channel violation: a replayed or tampered frame.
                # Fail closed — drop the connection; a legitimate client
                # re-establishes a fresh attested channel and resumes.
                self.stats["channel_violations"] += 1
                self.telemetry.counter(
                    "serve_channel_violations_total"
                ).inc()
                return
            except WireError as exc:
                await self._send_error(transport, str(exc))
                return
            if kind == FrameKind.REQUEST:
                try:
                    req_id, request, balancer = decode_request(
                        payload, value_size
                    )
                except WireError as exc:
                    await self._send_error(transport, str(exc))
                    return
                if self._draining:
                    self.stats["shed_while_draining"] += 1
                    self.telemetry.counter(
                        "serve_shutting_down_total"
                    ).inc()
                    transport.send(
                        FrameKind.SHUTTING_DOWN, encode_u64(req_id)
                    )
                    await transport.drain()
                    continue
                if (
                    self.max_open_tickets is not None
                    and self._open_tickets >= self.max_open_tickets
                ):
                    self.stats["busy_rejections"] += 1
                    self.telemetry.counter("serve_busy_total").inc()
                    transport.send(FrameKind.BUSY, encode_u64(req_id))
                    await transport.drain()
                    continue
                if session is not None and req_id in session.seen:
                    # Resent after a reconnect; the original is pending
                    # or buffered — exactly-once holds, drop the copy.
                    self.stats["duplicate_requests"] += 1
                    self.telemetry.counter(
                        "serve_duplicate_requests_total"
                    ).inc()
                    continue
                # Backpressure: stop reading this socket until a
                # response slot frees up.
                await pending.acquire()
                try:
                    ticket = self._store.submit(request, balancer)
                except Exception as exc:
                    pending.release()
                    await self._send_error(transport, repr(exc))
                    return
                self.stats["requests"] += 1
                self._open_tickets += 1
                if self._open_tickets > self.stats["peak_open_tickets"]:
                    self.stats["peak_open_tickets"] = self._open_tickets
                self.telemetry.counter("serve_requests_total").inc()
                self.telemetry.gauge("serve_open_tickets").set(
                    self._open_tickets
                )
                self.telemetry.gauge("serve_open_tickets_peak").set_max(
                    self._open_tickets
                )
                if session is not None:
                    session.seen.add(req_id)
                ticket.add_done_callback(
                    lambda t, s=session, tr=transport, p=pending, r=req_id:
                        self._loop.call_soon_threadsafe(
                            self._complete_on_loop, s, tr, p, r, t
                        )
                )
            elif kind == FrameKind.SESSION:
                session = await self._handle_session(
                    transport, payload, session
                )
                if session is None:
                    return
            elif kind == FrameKind.RESPONSE_ACK:
                if session is not None:
                    try:
                        session.ack(decode_u64(payload))
                    except WireError as exc:
                        await self._send_error(transport, str(exc))
                        return
            elif kind == FrameKind.CLOSE_EPOCH:
                if self._draining:
                    transport.send(FrameKind.SHUTTING_DOWN, encode_u64(0))
                    await transport.drain()
                    continue
                flush = bool(payload and decode_u32(payload) & 1)
                try:
                    epoch = await self._loop.run_in_executor(
                        None, self._close_epoch_blocking, flush
                    )
                except Exception as exc:
                    await self._send_error(transport, repr(exc))
                    return
                transport.send(
                    FrameKind.EPOCH_CLOSED,
                    encode_u64(epoch if epoch is not None else 0),
                )
                await transport.drain()
            elif kind == FrameKind.PING:
                transport.send(FrameKind.PONG)
                await transport.drain()
            else:
                await self._send_error(
                    transport,
                    f"unexpected frame kind {kind} on the front door",
                )
                return

    async def _handle_session(
        self,
        transport: AsyncFrameTransport,
        payload: bytes,
        current: Optional[_Session],
    ) -> Optional[_Session]:
        """SESSION frame: open a new session or resume an existing one.

        Returns the attached session, or ``None`` after sending a fatal
        error (unknown/expired session id).
        """
        try:
            session_id, last_seq = decode_session(payload)
        except WireError as exc:
            await self._send_error(transport, str(exc))
            return None
        if current is not None and session_id != current.session_id:
            await self._send_error(
                transport, "connection is already bound to a session"
            )
            return None
        if session_id == 0:
            session = _Session(self._next_session_id)
            self._next_session_id += 1
            self._evict_sessions()
            self._sessions[session.session_id] = session
            session.transport = transport
            self.stats["sessions"] += 1
            self.telemetry.counter("serve_sessions_total").inc()
            transport.send(
                FrameKind.SESSION_ACK,
                encode_session(session.session_id, 0),
            )
            await transport.drain()
            return session
        session = self._sessions.get(session_id)
        if session is None:
            await self._send_error(
                transport,
                f"session {session_id} expired or unknown; open tickets "
                f"cannot be resumed",
            )
            return None
        if session.transport is not None and session.transport is not transport:
            # The old connection may be half-dead; the newest wins.
            session.transport.close()
        session.transport = transport
        session.ack(last_seq)
        self.stats["session_resumes"] += 1
        self.telemetry.counter("serve_session_resumes_total").inc()
        transport.send(
            FrameKind.SESSION_ACK,
            encode_session(session.session_id, session.next_seq - 1),
        )
        # Replay everything the client missed, in delivery order.
        for _seq, _req_id, resp_payload in session.buffer:
            self.stats["replayed_responses"] += 1
            self.telemetry.counter("serve_replayed_responses_total").inc()
            transport.send(FrameKind.RESPONSE, resp_payload)
        await transport.drain()
        return session

    def _evict_sessions(self) -> None:
        """Keep the session table at ``max_sessions`` (evict detached)."""
        while len(self._sessions) >= self.max_sessions:
            for sid, session in self._sessions.items():
                if session.transport is None:
                    del self._sessions[sid]
                    break
            else:
                # Every session is attached to a live connection; admit
                # anyway rather than refusing service.
                return

    def _close_epoch_blocking(self, flush: bool) -> Optional[int]:
        """CLOSE_EPOCH admin path (runs in the default executor)."""
        epoch = self.pipeline.close_epoch(wait=True)
        if flush:
            self.pipeline.flush()
        return epoch

    def _complete_on_loop(
        self, session, transport, pending, req_id, ticket
    ) -> None:
        """Deliver one resolved ticket's RESPONSE (event-loop thread).

        Counts the response when it resolves; sessionless responses to a
        closed connection are dropped (PR 6 behaviour), session-bound
        ones are buffered and replayed on resume.
        """
        self._open_tickets -= 1
        self.telemetry.gauge("serve_open_tickets").set(self._open_tickets)
        pending.release()
        delivery_seq = 0
        if session is not None:
            delivery_seq = session.next_seq
            session.next_seq += 1
        payload = encode_response(
            req_id,
            ticket.result(),
            self.value_size,
            load_balancer=ticket.load_balancer,
            arrival=ticket.arrival,
            epoch=ticket.epoch,
            delivery_seq=delivery_seq,
        )
        self.stats["responses"] += 1
        self.telemetry.counter("serve_responses_total").inc()
        if session is not None:
            session.buffer.append((delivery_seq, req_id, payload))
            if len(session.buffer) > self.session_buffer_cap:
                # The client is not acking (or gone for good): expire
                # the session so memory stays bounded.  A later resume
                # attempt gets a typed "expired" error.
                self._sessions.pop(session.session_id, None)
                if session.transport is not None:
                    session.transport.close()
                    session.transport = None
                return
            live = session.transport
            if live is not None and not live.is_closing():
                live.send(FrameKind.RESPONSE, payload)
            return
        if transport.is_closing():
            return  # sessionless + disconnected: response has no home
        transport.send(FrameKind.RESPONSE, payload)

    async def _send_plain(self, writer, kind: int, payload: bytes) -> None:
        """Best-effort plaintext frame (pre-channel handshake errors)."""
        if writer.is_closing():
            return
        try:
            write_frame(writer, kind, payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _send_error(self, transport, message: str) -> None:
        """Best-effort ERROR frame (error text is public protocol state)."""
        if transport.is_closing():
            return
        try:
            transport.send(
                FrameKind.ERROR, message.encode("utf-8", "replace")
            )
            await transport.drain()
        except (TransportError, ConnectionError, OSError):
            pass

    def _observe_epoch(self, epoch, resolved, latency_s) -> None:
        """Pipeline epoch observer: service-level epoch accounting."""
        self.stats["epochs"] += 1
        self.telemetry.counter("serve_epochs_total").inc()


class ServerThread:
    """Host a :class:`SnoopyServer` on a background event-loop thread.

    The shape tests, benchmarks, and the load generator need: start the
    server, learn its bound port, drive it from ordinary blocking code,
    and tear it down deterministically::

        handle = ServerThread(store, clock=False).start()
        client = NetworkSnoopyClient(
            "127.0.0.1", handle.port, trust=handle.trust
        )
        ...
        handle.stop()

    ``stop()`` drains gracefully (see :meth:`SnoopyServer.aclose`); the
    store itself stays open (the caller owns it).
    """

    def __init__(self, store, **server_kwargs):
        self._store = store
        self._server_kwargs = server_kwargs
        self.server: Optional[SnoopyServer] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def trust(self):
        """The server's :class:`~repro.serve.secure.ServeTrust` (or None)."""
        return self.server.trust if self.server is not None else None

    def start(self) -> "ServerThread":
        """Launch the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._main, name="snoopy-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Shut the server down and join the loop thread; idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            self.server = SnoopyServer(self._store, **self._server_kwargs)
            await self.server.start()
            self.port = self.server.port
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop_requested.wait()
        finally:
            await self.server.aclose()
