"""The asyncio load-balancer front door: ``SnoopyServer``.

One server process hosts a full :class:`~repro.core.snoopy.Snoopy`
deployment behind TCP.  Client connections speak the versioned
:mod:`repro.core.wire` protocol: a fixed-size hello handshake, then a
stream of fixed-size REQUEST frames in and RESPONSE frames out.  Every
request becomes a non-blocking ``submit()`` into the deployment's
:class:`~repro.core.pipeline.EpochPipeline`; the pipeline's match thread
resolves the ticket and the completion bridges back onto the event loop
through :meth:`Ticket.add_done_callback
<repro.core.tickets.Ticket.add_done_callback>` +
``loop.call_soon_threadsafe`` — the server never blocks on an epoch.

**Epoch pacing.**  In production mode (``clock=True``) the pipeline's
background clock closes epochs on the fixed public period
``epoch_duration`` — arrival timing never shapes when traffic flows,
the property Cloak-style timing leakage arguments require.  Tests and
differential runs pass ``clock=False`` and drive epochs explicitly with
the CLOSE_EPOCH admin frame, keeping epoch composition deterministic.

**Backpressure.**  Each connection carries an
``asyncio.Semaphore(max_pending_per_connection)``: a REQUEST frame is
only read off the socket after acquiring a slot, and the slot frees when
its RESPONSE is written.  A client that outruns the epoch pipeline
therefore stops being *read* — TCP flow control pushes back to the
sender — while the pipeline's own :class:`~threading.BoundedSemaphore`
depth cap independently skips clock ticks and lets batches grow (§6's
backpressure-by-bigger-batches, not queueing).

**What the network layer makes public** (see SECURITY.md): connection
counts and lifetimes, the fixed epoch cadence, and message sizes — all
of which are functions of public configuration, never of keys or values
(request/response frames are fixed-size per the store's value size).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.core.wire import (
    FrameKind,
    Role,
    VersionMismatchError,
    WireError,
    decode_request,
    decode_u32,
    encode_response,
    encode_u32,
    encode_u64,
)
from repro.errors import ConfigurationError, TransportError
from repro.serve.protocol import (
    handshake_async,
    read_frame_async,
    write_frame,
)


class SnoopyServer:
    """Serve a :class:`~repro.core.snoopy.Snoopy` deployment over TCP.

    Args:
        store: an initialized deployment.  Its backend must support
            shared state (``serial``/``thread``) — the pipeline and any
            :class:`~repro.serve.workers.RemoteSubOram` proxies live in
            this process.
        host / port: bind address (port 0 picks a free port; the bound
            port is on :attr:`port` after :meth:`start`).
        clock: run the pipeline's background epoch clock (production).
            With ``False``, epochs close only on CLOSE_EPOCH admin
            frames — the deterministic mode tests use.
        epoch_duration: clock period override in seconds.
        pipeline_depth: max in-flight epochs (default from config).
        max_pending_per_connection: per-connection open-ticket cap; the
            backpressure window described in the module docstring.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        clock: bool = True,
        epoch_duration: Optional[float] = None,
        pipeline_depth: Optional[int] = None,
        max_pending_per_connection: int = 1024,
    ):
        if not store.backend.supports_shared_state:
            raise ConfigurationError(
                "SnoopyServer needs a shared-state backend "
                "(serial/thread): the epoch pipeline, ticket callbacks "
                "and worker sockets all live in the server process"
            )
        if max_pending_per_connection < 1:
            raise ConfigurationError(
                "max_pending_per_connection must be >= 1"
            )
        self._store = store
        self._host = host
        self._requested_port = port
        self._clock = clock
        self._epoch_duration = epoch_duration
        self._pipeline_depth = pipeline_depth
        self.max_pending_per_connection = max_pending_per_connection
        self.telemetry = store.telemetry
        self.pipeline = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._open_tickets = 0
        self.stats = {
            "connections": 0,
            "requests": 0,
            "responses": 0,
            "epochs": 0,
            "version_mismatches": 0,
            "peak_open_tickets": 0,
        }

    @property
    def value_size(self) -> int:
        """The store's fixed object size (sets every frame's length)."""
        return self._store.config.value_size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SnoopyServer":
        """Start the epoch pipeline and begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        self.pipeline = self._store.start_pipeline(
            depth=self._pipeline_depth,
            clock=self._clock,
            epoch_duration=self._epoch_duration,
        )
        self.pipeline.add_epoch_observer(self._observe_epoch)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled/closed."""
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, then stop the pipeline (flushing in-flight epochs)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pipeline is not None and self.pipeline.active:
            # stop() flushes; run it off-loop so pending ticket
            # callbacks can still land on the loop while it drains.
            await asyncio.get_running_loop().run_in_executor(
                None, self.pipeline.stop
            )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                _version, role = await handshake_async(
                    reader, writer, Role.SERVER
                )
            except VersionMismatchError as exc:
                self.stats["version_mismatches"] += 1
                self.telemetry.counter(
                    "serve_version_mismatches_total"
                ).inc()
                await self._send_error(writer, str(exc))
                return
            except (TransportError, WireError):
                return
            if role != Role.CLIENT:
                await self._send_error(
                    writer, f"unexpected peer role {role} on the front door"
                )
                return
            self.stats["connections"] += 1
            self.telemetry.counter("serve_connections_total").inc()
            self.telemetry.gauge("serve_connections_open").inc()
            # Public deployment shape, so clients need no out-of-band
            # configuration: value size (frame geometry) + balancer count.
            write_frame(
                writer, FrameKind.INIT,
                encode_u32(self.value_size)
                + encode_u32(self._store.config.num_load_balancers),
            )
            await writer.drain()
            try:
                await self._serve_frames(reader, writer)
            finally:
                self.telemetry.gauge("serve_connections_open").inc(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_frames(self, reader, writer) -> None:
        """The per-connection frame loop (post-handshake)."""
        pending = asyncio.Semaphore(self.max_pending_per_connection)
        value_size = self.value_size
        while True:
            try:
                kind, payload = await read_frame_async(reader)
            except TransportError:
                return  # client went away; its submitted epochs still run
            except WireError as exc:
                await self._send_error(writer, str(exc))
                return
            if kind == FrameKind.REQUEST:
                try:
                    req_id, request, balancer = decode_request(
                        payload, value_size
                    )
                except WireError as exc:
                    await self._send_error(writer, str(exc))
                    return
                # Backpressure: stop reading this socket until a
                # response slot frees up.
                await pending.acquire()
                try:
                    ticket = self._store.submit(request, balancer)
                except Exception as exc:
                    pending.release()
                    await self._send_error(writer, repr(exc))
                    return
                self.stats["requests"] += 1
                self._open_tickets += 1
                if self._open_tickets > self.stats["peak_open_tickets"]:
                    self.stats["peak_open_tickets"] = self._open_tickets
                self.telemetry.counter("serve_requests_total").inc()
                self.telemetry.gauge("serve_open_tickets").set(
                    self._open_tickets
                )
                ticket.add_done_callback(
                    lambda t, w=writer, p=pending, r=req_id:
                        self._loop.call_soon_threadsafe(
                            self._complete_on_loop, w, p, r, t
                        )
                )
            elif kind == FrameKind.CLOSE_EPOCH:
                flush = bool(payload and decode_u32(payload) & 1)
                try:
                    epoch = await self._loop.run_in_executor(
                        None, self._close_epoch_blocking, flush
                    )
                except Exception as exc:
                    await self._send_error(writer, repr(exc))
                    return
                write_frame(
                    writer, FrameKind.EPOCH_CLOSED,
                    encode_u64(epoch if epoch is not None else 0),
                )
                await writer.drain()
            elif kind == FrameKind.PING:
                write_frame(writer, FrameKind.PONG)
                await writer.drain()
            else:
                await self._send_error(
                    writer, f"unexpected frame kind {kind} on the front door"
                )
                return

    def _close_epoch_blocking(self, flush: bool) -> Optional[int]:
        """CLOSE_EPOCH admin path (runs in the default executor)."""
        epoch = self.pipeline.close_epoch(wait=True)
        if flush:
            self.pipeline.flush()
        return epoch

    def _complete_on_loop(self, writer, pending, req_id, ticket) -> None:
        """Write one resolved ticket's RESPONSE frame (event-loop thread)."""
        self._open_tickets -= 1
        self.telemetry.gauge("serve_open_tickets").set(self._open_tickets)
        pending.release()
        if writer.is_closing():
            return  # client disconnected mid-epoch; response has no home
        # Count before writing: the transport may flush synchronously, so
        # a counter bumped after the send could still read one short when
        # the client reacts to the final response.
        self.stats["responses"] += 1
        self.telemetry.counter("serve_responses_total").inc()
        write_frame(
            writer,
            FrameKind.RESPONSE,
            encode_response(
                req_id,
                ticket.result(),
                self.value_size,
                load_balancer=ticket.load_balancer,
                arrival=ticket.arrival,
                epoch=ticket.epoch,
            ),
        )

    async def _send_error(self, writer, message: str) -> None:
        """Best-effort ERROR frame (error text is public protocol state)."""
        if writer.is_closing():
            return
        try:
            write_frame(
                writer, FrameKind.ERROR, message.encode("utf-8", "replace")
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    def _observe_epoch(self, epoch, resolved, latency_s) -> None:
        """Pipeline epoch observer: service-level epoch accounting."""
        self.stats["epochs"] += 1
        self.telemetry.counter("serve_epochs_total").inc()


class ServerThread:
    """Host a :class:`SnoopyServer` on a background event-loop thread.

    The shape tests, benchmarks, and the load generator need: start the
    server, learn its bound port, drive it from ordinary blocking code,
    and tear it down deterministically::

        handle = ServerThread(store, clock=False).start()
        client = NetworkSnoopyClient("127.0.0.1", handle.port)
        ...
        handle.stop()

    ``stop()`` closes the listener and stops the pipeline; the store
    itself stays open (the caller owns it).
    """

    def __init__(self, store, **server_kwargs):
        self._store = store
        self._server_kwargs = server_kwargs
        self.server: Optional[SnoopyServer] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        """Launch the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._main, name="snoopy-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Shut the server down and join the loop thread; idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            self.server = SnoopyServer(self._store, **self._server_kwargs)
            await self.server.start()
            self.port = self.server.port
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop_requested.wait()
        finally:
            await self.server.aclose()
