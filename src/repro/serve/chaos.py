"""Deterministic network-chaos soak for the attested serve stack.

The robustness acceptance test for the distributed serve layer: run a
seeded workload through the *real* TCP stack — attested handshake,
sealed frames, resumable client sessions, (optionally) out-of-process
subORAM workers — while a seeded :class:`~repro.core.faults
.NetworkFaultPlan` injects connection drops, frame delays, partitions,
truncated and duplicated frames, and slow-loris handshakes at the
transport seam.  Then prove two exact equalities:

1. **Byte-identical responses.**  Every request's ``(ok, value)`` pair
   equals the one a fault-free, in-process, sequential run of the same
   seeded workload produces.  Chaos may cost reconnects, session
   resumes, epoch retries, and worker respawns — never a changed
   answer, a lost ticket, or a double-applied write.
2. **Exact fault accounting.**  The injector's fired-event ``stats``
   equal the plan's scheduled :meth:`~repro.core.faults
   .NetworkFaultPlan.counts` — every scheduled fault actually fired
   (the plan was not quietly under-delivered) and nothing fired twice.

Why the equalities hold: the client resends pending requests in
``req_id`` order on session resume and the server deduplicates them,
so each epoch's batch composition (and with it every oblivious
execution) is independent of where connections dropped; worker-side
faults are absorbed by atomic epoch retry, which re-executes pristine
batches against a fresh clone of the committed subORAM state.

Run it from the CLI::

    python -m repro chaos-net --seed 3 --epochs 12 --worker-processes

or from code / tests::

    report = run_network_soak(seed=3, epochs=12)
    assert report["matched"]
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.config import SnoopyConfig
from repro.core.faults import (
    NET_FAULT_KINDS,
    NetworkFaultInjector,
    NetworkFaultPlan,
)
from repro.core.snoopy import Snoopy
from repro.serve.netclient import NetworkSnoopyClient, ReconnectPolicy
from repro.serve.secure import ServeTrust
from repro.serve.server import ServerThread
from repro.serve.workers import WorkerCluster
from repro.types import OpType, Request
from repro.utils.validation import require

#: Fault kinds injected on the balancer→worker links.  ``frame_duplicate``
#: is client-link only: a duplicated sealed frame is a *replay* to the
#: receiver, and while the front end answers a replay by dropping the
#: client connection (which the session layer then recovers), a worker
#: reports it as a protocol error — correct fail-closed behaviour, but
#: not a fault the epoch retry machinery should paper over.
WORKER_FAULT_KINDS = (
    "conn_drop", "frame_delay", "partition", "frame_truncate",
    "slow_handshake",
)

#: Deterministic chaos-soak trust secret (any >= 16 bytes works; the
#: soak only needs both ends of every link to share it).
SOAK_TRUST_SECRET = b"snoopy-chaos-soak-trust"


def build_workload(
    seed: int,
    epochs: int,
    requests_per_epoch: int,
    objects: int,
    value_size: int,
    num_load_balancers: int,
) -> List[List[Tuple[Request, int]]]:
    """The seeded request schedule both runs execute.

    Returns one list per epoch of ``(request, pinned_balancer)`` pairs.
    Every request pins its load balancer so the server-side deployment
    never consults its own RNG for routing — the chaotic networked run
    and the fault-free in-process run see identical balancer batches.
    """
    rng = random.Random((seed << 8) ^ 0x5EED)
    schedule: List[List[Tuple[Request, int]]] = []
    seq = 0
    for _epoch in range(epochs):
        batch: List[Tuple[Request, int]] = []
        for _ in range(requests_per_epoch):
            key = rng.randrange(objects)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)]) * value_size
                request = Request(
                    OpType.WRITE, key, value, client_id=7, seq=seq
                )
            else:
                request = Request(OpType.READ, key, client_id=7, seq=seq)
            batch.append((request, rng.randrange(num_load_balancers)))
            seq += 1
        schedule.append(batch)
    return schedule


def build_soak_plan(
    seed: int,
    epochs: int,
    requests_per_epoch: int,
    num_suborams: int,
    intensity: int = 1,
    worker_links: bool = False,
) -> NetworkFaultPlan:
    """The seeded fault plan for one soak.

    Client-link events are scheduled across the run's guaranteed send
    count (one REQUEST frame per scheduled request); worker-link events
    across the per-epoch send floor (each worker sees at least one
    frame per epoch).  Faults only ever *add* sends (resends, retries),
    so every scheduled event is guaranteed to fire and the injector's
    ``stats`` must land exactly on the plan's ``counts()``.
    """
    events = list(NetworkFaultPlan.generate(
        seed,
        ["client"],
        messages=epochs * requests_per_epoch,
        intensity=intensity,
        kinds=list(NET_FAULT_KINDS),
    ).events)
    if worker_links:
        events.extend(NetworkFaultPlan.generate(
            seed + 1,
            [f"worker-{index}" for index in range(num_suborams)],
            messages=epochs,
            intensity=intensity,
            kinds=list(WORKER_FAULT_KINDS),
        ).events)
    return NetworkFaultPlan(events)


def _build_config(
    *,
    num_load_balancers: int,
    num_suborams: int,
    value_size: int,
    kernel: str,
    epoch_max_attempts: int,
) -> SnoopyConfig:
    return SnoopyConfig(
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        value_size=value_size,
        security_parameter=16,
        execution_backend="serial",
        kernel=kernel,
        epoch_max_attempts=epoch_max_attempts,
    )


def _initial_objects(objects: int, value_size: int) -> Dict[int, bytes]:
    return {key: bytes(value_size) for key in range(objects)}


def run_reference(
    schedule: List[List[Tuple[Request, int]]],
    *,
    seed: int,
    objects: int,
    value_size: int,
    num_load_balancers: int,
    num_suborams: int,
    kernel: str = "python",
) -> List[Tuple[bool, Optional[bytes]]]:
    """The fault-free oracle: in-process, sequential, no network.

    Returns each request's ``(ok, value)`` in schedule order — the
    byte-exact answer key the chaotic networked run must reproduce.
    """
    config = _build_config(
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        value_size=value_size,
        kernel=kernel,
        epoch_max_attempts=1,
    )
    results: List[Tuple[bool, Optional[bytes]]] = []
    with Snoopy(config, rng=random.Random(seed)) as store:
        store.initialize(_initial_objects(objects, value_size))
        for batch in schedule:
            tickets = [
                store.submit(request, load_balancer=pin)
                for request, pin in batch
            ]
            store.run_epoch()
            for ticket in tickets:
                response = ticket.result()
                results.append((response.ok, response.value))
    return results


def run_network_soak(
    seed: int = 0,
    epochs: int = 12,
    requests_per_epoch: int = 8,
    *,
    objects: int = 96,
    value_size: int = 8,
    num_load_balancers: int = 2,
    num_suborams: int = 2,
    intensity: int = 1,
    worker_processes: bool = False,
    kernel: str = "python",
    timeout: float = 60.0,
    telemetry=None,
) -> dict:
    """One full chaos soak; returns the verdict and its evidence.

    Runs the fault-free reference first, then the chaos-soaked attested
    stack (``ServerThread`` + ``NetworkSnoopyClient`` with a resumable
    session; plus a ``WorkerCluster`` with wire-mirrored snapshots when
    ``worker_processes``), and compares.

    The report dict carries ``matched`` (the overall verdict) plus the
    separate ``responses_matched`` / ``faults_matched`` legs,
    ``fault_stats`` vs ``expected_fault_stats``, and the client/server
    resilience counters (reconnects, session resumes, deduplicated
    requests, epoch retries) that show the chaos actually bit.
    """
    require(epochs >= 1, "epochs must be >= 1")
    require(requests_per_epoch >= 1, "requests_per_epoch must be >= 1")
    schedule = build_workload(
        seed, epochs, requests_per_epoch, objects, value_size,
        num_load_balancers,
    )
    plan = build_soak_plan(
        seed, epochs, requests_per_epoch, num_suborams,
        intensity=intensity, worker_links=worker_processes,
    )
    reference = run_reference(
        schedule,
        seed=seed,
        objects=objects,
        value_size=value_size,
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        kernel=kernel,
    )

    # Armed only once setup traffic (worker INIT frames, snapshot
    # seeding) is done, so the plan's message indices land on
    # steady-state serving where the retry machinery can absorb them.
    injector = NetworkFaultInjector(plan, telemetry=telemetry, armed=False)
    trust = ServeTrust(SOAK_TRUST_SECRET)
    config = _build_config(
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        value_size=value_size,
        kernel=kernel,
        # Worker-link faults surface as retryable epoch failures; give
        # the retry controller generous headroom so a burst of faults
        # on one epoch cannot exhaust it.
        epoch_max_attempts=8 if worker_processes else 1,
    )
    chaos_results: List[Tuple[bool, Optional[bytes]]] = []
    cluster: Optional[WorkerCluster] = None
    server_stats: Dict[str, int] = {}
    client_stats: Dict[str, int] = {}
    retry_stats: Dict[str, int] = {}
    try:
        factory = None
        if worker_processes:
            cluster = WorkerCluster(
                num_suborams,
                value_size=value_size,
                security_parameter=16,
                kernel=kernel,
                trust=trust,
                remote_snapshots=True,
                injector=injector,
                telemetry=telemetry,
            ).start()
            factory = cluster.factory
        with Snoopy(
            config, rng=random.Random(seed), suboram_factory=factory,
            telemetry=telemetry,
        ) as store:
            store.initialize(_initial_objects(objects, value_size))
            injector.armed = True
            with ServerThread(store, clock=False, trust=trust) as handle:
                handle.start()
                client = NetworkSnoopyClient(
                    "127.0.0.1",
                    handle.port,
                    trust=trust,
                    timeout=timeout,
                    reconnect=ReconnectPolicy(seed=seed, max_attempts=12),
                    injector=injector,
                    link="client",
                )
                try:
                    tickets = []
                    for batch in schedule:
                        for request, pin in batch:
                            tickets.append(
                                client.submit(request, load_balancer=pin)
                            )
                        client.close_epoch(flush=True)
                    for ticket in tickets:
                        response = ticket.result(timeout)
                        chaos_results.append((response.ok, response.value))
                    client_stats = dict(client.stats)
                finally:
                    client.close()
                server_stats = dict(handle.server.stats)
            retry_stats = dict(store.fault_stats)
    finally:
        if cluster is not None:
            cluster.stop()

    expected_fault_stats = {
        NET_FAULT_KINDS[kind]: count for kind, count in plan.counts().items()
    }
    responses_matched = chaos_results == reference
    faults_matched = (
        injector.stats == expected_fault_stats and injector.exhausted
    )
    return {
        "seed": seed,
        "epochs": epochs,
        "requests": epochs * requests_per_epoch,
        "objects": objects,
        "value_size": value_size,
        "num_load_balancers": num_load_balancers,
        "num_suborams": num_suborams,
        "worker_processes": worker_processes,
        "attested": True,
        "scheduled_faults": len(plan),
        "matched": responses_matched and faults_matched,
        "responses_matched": responses_matched,
        "faults_matched": faults_matched,
        "fault_stats": dict(injector.stats),
        "expected_fault_stats": expected_fault_stats,
        "client_stats": client_stats,
        "server_stats": server_stats,
        "retry_stats": retry_stats,
    }
