"""Framed-socket plumbing shared by the server, workers, and clients.

One tiny layer sits between :mod:`repro.core.wire`'s pure encoders and
the TCP endpoints: read/write exactly one hello or one frame, for both
blocking sockets (the sync client and the subORAM worker channel) and
asyncio streams (the load-balancer server and the load generator).

Failure mapping is deliberate: a peer that vanishes mid-frame (short
read, reset connection) raises :class:`~repro.errors.TransportError` —
the *retryable* fault class — while malformed bytes raise
:class:`~repro.core.wire.WireError`, which is never retried.  That
split is what lets the epoch retry controller recover from a crashed
worker without ever retrying a protocol bug.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Tuple

from repro.core.wire import (
    FRAME_HEADER_SIZE,
    HELLO_SIZE,
    decode_frame_header,
    decode_hello,
    encode_frame,
    encode_hello,
)
from repro.errors import TransportError


# ---------------------------------------------------------------------------
# Blocking sockets (sync client, worker channel)
# ---------------------------------------------------------------------------
def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise :class:`TransportError`.

    A cleanly closed or reset peer surfaces as a transport fault — the
    retryable kind — because from this side of the wire they are the
    same public event: the connection is gone.
    """
    chunks = []
    remaining = size
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise TransportError(f"connection lost mid-read: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"connection closed with {remaining} of {size} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_all(sock: socket.socket, data: bytes) -> None:
    """``sendall`` with socket failures mapped to :class:`TransportError`."""
    try:
        sock.sendall(data)
    except OSError as exc:
        raise TransportError(f"connection lost mid-write: {exc}") from exc


def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    """Write one framed message to a blocking socket."""
    send_all(sock, encode_frame(kind, payload))


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one framed message; returns ``(kind, payload)``."""
    kind, length = decode_frame_header(
        recv_exact(sock, FRAME_HEADER_SIZE)
    )
    payload = recv_exact(sock, length) if length else b""
    return kind, payload


def handshake(sock: socket.socket, role: int) -> Tuple[int, int, int]:
    """Exchange plaintext hello frames on a blocking socket.

    Returns the peer's ``(version, role, flags)``.  Both sides send
    their hello eagerly (the frames are fixed-size, so there is no
    ordering deadlock) and then validate the peer's.  Attested
    deployments use :func:`repro.serve.secure.secure_handshake`, which
    layers the quote exchange on top of this hello.

    Raises:
        WireError / VersionMismatchError: malformed peer or version skew.
        TransportError: the peer vanished mid-handshake.
    """
    send_all(sock, encode_hello(role))
    return decode_hello(recv_exact(sock, HELLO_SIZE))


# ---------------------------------------------------------------------------
# asyncio streams (server, load generator)
# ---------------------------------------------------------------------------
async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one framed message from an asyncio stream."""
    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise TransportError(f"connection lost mid-read: {exc}") from exc
    kind, length = decode_frame_header(header)
    if not length:
        return kind, b""
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise TransportError(f"connection lost mid-read: {exc}") from exc
    return kind, payload


def write_frame(
    writer: asyncio.StreamWriter, kind: int, payload: bytes = b""
) -> None:
    """Buffer one framed message on an asyncio stream (caller drains)."""
    writer.write(encode_frame(kind, payload))


async def handshake_async(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    role: int,
) -> Tuple[int, int, int]:
    """Exchange plaintext hellos on an asyncio stream.

    Returns the peer's ``(version, role, flags)``.
    """
    writer.write(encode_hello(role))
    await writer.drain()
    try:
        hello = await reader.readexactly(HELLO_SIZE)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise TransportError(f"connection lost mid-handshake: {exc}") from exc
    return decode_hello(hello)
