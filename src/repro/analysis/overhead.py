"""Dummy-overhead and capacity analysis behind Figures 3 and 4.

Figure 3 plots the percentage overhead of dummy requests
(``(S*B - R) / R``) as the number of real requests grows, for
``S in {2, 10, 20}`` at lambda=128: more real requests -> better balance ->
less padding.  Figure 4 plots the total *real* request capacity of the
system per epoch assuming each subORAM can process at most a fixed number
of requests per epoch (<= 1K in the paper): inverting ``f`` shows capacity
grows sublinearly in S for lambda > 0 because padding grows too.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.balls_bins import batch_size


def dummy_overhead_percent(num_requests: int, num_suborams: int, security_parameter: int = 128) -> float:
    """Percent overhead of dummies: 100 * (S*B - R) / R (Fig. 3's y-axis)."""
    if num_requests <= 0:
        return 0.0
    total = num_suborams * batch_size(num_requests, num_suborams, security_parameter)
    return 100.0 * (total - num_requests) / num_requests


def real_request_capacity(
    num_suborams: int,
    per_suboram_budget: int = 1000,
    security_parameter: int = 128,
) -> int:
    """Largest R such that f(R, S) <= per-subORAM budget (Fig. 4's y-axis).

    Found by binary search; ``f`` is monotone non-decreasing in R for fixed
    S (more balls never shrink the required bin size).
    """
    lo, hi = 0, per_suboram_budget * num_suborams
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if batch_size(mid, num_suborams, security_parameter) <= per_suboram_budget:
            lo = mid
        else:
            hi = mid - 1
    return lo


def capacity_curve(
    max_suborams: int,
    per_suboram_budget: int = 1000,
    security_parameters: Optional[List[int]] = None,
) -> dict:
    """Fig. 4 data: {lambda: [capacity at S=1..max_suborams]}."""
    if security_parameters is None:
        security_parameters = [0, 80, 128]
    return {
        lam: [
            real_request_capacity(s, per_suboram_budget, lam)
            for s in range(1, max_suborams + 1)
        ]
        for lam in security_parameters
    }


def overhead_curve(
    request_counts: List[int],
    num_suborams: int,
    security_parameter: int = 128,
) -> List[float]:
    """Fig. 3 data: dummy overhead % for each request count."""
    return [
        dummy_overhead_percent(r, num_suborams, security_parameter)
        for r in request_counts
    ]
