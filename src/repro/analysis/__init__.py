"""Analytical machinery: the Theorem 3 batch-size bound and its relatives."""

from repro.analysis.balls_bins import (
    batch_size,
    log_overflow_probability,
    overflow_probability,
)
from repro.analysis.bounds import bound_comparison, exact_batch_size
from repro.analysis.overhead import capacity_curve, dummy_overhead_percent

# repro.analysis.calibration is importable directly; re-exporting it here
# would cycle through repro.sim (which itself uses repro.analysis).

__all__ = [
    "batch_size",
    "bound_comparison",
    "capacity_curve",
    "dummy_overhead_percent",
    "exact_batch_size",
    "log_overflow_probability",
    "overflow_probability",
]
