"""Fitting cost-model constants from measurements.

The default :class:`~repro.sim.machines.MachineProfile` is calibrated to
the paper's reported numbers.  To model a *different* machine, measure a
few primitive timings and fit:

* ``fit_sort_constant`` — least-squares ``c`` in ``t = c * comparators(n)``
  from (n, seconds) samples of a bitonic sort;
* ``fit_scan_constants`` — per-object and per-byte scan costs from
  (num_objects, object_size, seconds) samples (one regime at a time:
  resident or paged);
* ``calibrate_profile`` — run the real Python primitives, fit, and return
  a profile describing *this interpreter* (useful for making the micro
  benchmarks' absolute numbers interpretable).

All fits are ordinary least squares through the origin / normal
equations — two or three parameters, no scipy optimizers needed.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.machines import DEFAULT_PROFILE, MachineProfile
from repro.utils.bits import next_pow2
from repro.utils.validation import require


def _comparators(n: int) -> int:
    m = next_pow2(max(1, n))
    if m == 1:
        return 0
    log_m = m.bit_length() - 1
    return (m // 2) * (log_m * (log_m + 1) // 2)


def fit_sort_constant(samples: Sequence[Tuple[int, float]]) -> float:
    """Least-squares per-comparator cost from (n, seconds) samples."""
    require(len(samples) >= 1, "need at least one sample")
    num = 0.0
    den = 0.0
    for n, seconds in samples:
        work = _comparators(n)
        num += work * seconds
        den += work * work
    require(den > 0, "samples must include n >= 2")
    return num / den


def fit_scan_constants(
    samples: Sequence[Tuple[int, int, float]]
) -> Tuple[float, float]:
    """Fit (per_object_s, per_byte_s) from (objects, object_size, seconds).

    Model: ``t = objects * (a + size * b)``.  Solved by the 2x2 normal
    equations; requires samples with at least two distinct object sizes.
    """
    require(len(samples) >= 2, "need at least two samples")
    s_xx = s_xy = s_yy = r_x = r_y = 0.0
    for objects, size, seconds in samples:
        x = float(objects)  # coefficient of a
        y = float(objects * size)  # coefficient of b
        s_xx += x * x
        s_xy += x * y
        s_yy += y * y
        r_x += x * seconds
        r_y += y * seconds
    det = s_xx * s_yy - s_xy * s_xy
    require(abs(det) > 1e-30, "samples must vary object size")
    a = (r_x * s_yy - r_y * s_xy) / det
    b = (s_xx * r_y - s_xy * r_x) / det
    return max(0.0, a), max(0.0, b)


def measure_python_sort(
    sizes: Sequence[int], rng_seed: int = 0
) -> List[Tuple[int, float]]:
    """Time the real bitonic sort at each size (one run each)."""
    import random

    from repro.oblivious.sort import bitonic_sort

    rng = random.Random(rng_seed)
    samples = []
    for n in sizes:
        data = [rng.randrange(10**9) for _ in range(n)]
        start = time.perf_counter()
        bitonic_sort(data)
        samples.append((n, time.perf_counter() - start))
    return samples


def calibrate_profile(
    base: MachineProfile = DEFAULT_PROFILE,
    sort_sizes: Sequence[int] = (256, 512, 1024),
    measure_sort: Optional[Callable] = None,
) -> MachineProfile:
    """A profile whose sort constant reflects the running interpreter.

    Only the sort constant is refit by default (it dominates the load
    balancer); other constants carry over from ``base``.  Pass
    ``measure_sort`` to supply samples from elsewhere (e.g. a C++
    implementation's timings).
    """
    if measure_sort is None:
        samples = measure_python_sort(sort_sizes)
    else:
        samples = measure_sort(sort_sizes)
    return replace(base, sort_compare_s=fit_sort_constant(samples))
