"""Alternative balls-into-bins maximum-load bounds (§10, "Balls-into-bins
analysis").

The paper argues prior bounds are ill-suited to Snoopy's setting: they
are either not cryptographically negligible under realistic parameters,
inefficient to evaluate, or numerically fragile.  This module implements
evaluable forms of the main alternatives so the ablation bench
(`benchmarks/bench_ablation_bounds.py`) can compare them against the
Theorem 3 Lambert-W bound:

* ``berenbrink_bound`` — the heavily-loaded-case bound of Berenbrink et
  al.: max load ``m/n + O(sqrt(m log n / n))`` with polynomially small
  (in the number of bins) failure probability — *not* negligible in a
  security parameter.
* ``raab_steger_bound`` — the classic "Balls into Bins" tight
  first/second-moment bound for the ``m >= n log n`` regime, again with
  failure probability ``n^-alpha``.
* ``exact_union_bound`` — a numerically evaluated union bound over the
  exact binomial tail (Ramakrishna-style).  Accurate but costly, and
  floating-point underflow limits the reachable security level —
  we evaluate the tail in log space to push past the paper's observed
  lambda ~ 44 wall, at the price of per-point summation.
"""

from __future__ import annotations

import math

from repro.analysis.balls_bins import batch_size
from repro.utils.validation import require_positive


def berenbrink_bound(num_requests: int, num_bins: int, alpha: float = 1.0) -> int:
    """Max-load bound ``m/n + sqrt(2 alpha (m/n) log n)`` (heavily loaded).

    Holds with probability ``1 - n^-alpha`` — *polynomial*, not
    negligible-in-lambda, which is the paper's complaint: no choice of
    the constant gives 2^-128 without blowing up the bound.
    """
    require_positive(num_bins, "num_bins")
    if num_requests == 0:
        return 0
    mean = num_requests / num_bins
    slack = math.sqrt(2.0 * alpha * mean * math.log(max(2, num_bins)))
    return min(num_requests, math.ceil(mean + slack))


def raab_steger_bound(num_requests: int, num_bins: int, alpha: float = 1.0) -> int:
    """Raab & Steger's maximum load for the ``m >> n log n`` regime.

    ``m/n + sqrt(2 (m/n) log n (1 + alpha))`` with failure probability
    ``~ n^-alpha``.
    """
    require_positive(num_bins, "num_bins")
    if num_requests == 0:
        return 0
    mean = num_requests / num_bins
    log_n = math.log(max(2, num_bins))
    slack = math.sqrt(2.0 * mean * log_n * (1.0 + alpha))
    return min(num_requests, math.ceil(mean + slack))


def _log_binomial_tail(n: int, p: float, k: int) -> float:
    """log Pr[Bin(n, p) >= k], evaluated stably in log space."""
    if k <= 0:
        return 0.0
    if k > n:
        return float("-inf")
    log_p = math.log(p)
    log_q = math.log1p(-p)
    # Sum the pmf from k upward; terms decay geometrically past the mode.
    log_terms = []
    log_coef = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    log_term = log_coef + k * log_p + (n - k) * log_q
    for i in range(k, n + 1):
        log_terms.append(log_term)
        if i < n:
            log_term += math.log((n - i) / (i + 1)) + log_p - log_q
            # Stop once terms are negligible relative to the head.
            if log_term < log_terms[0] - 60:
                break
    peak = max(log_terms)
    return peak + math.log(sum(math.exp(t - peak) for t in log_terms))


def exact_union_bound(
    num_requests: int, num_bins: int, capacity: int
) -> float:
    """log of the union bound with the *exact* binomial tail.

    ``log( n * Pr[Bin(m, 1/n) >= capacity + 1] )`` — tighter than the
    Chernoff form but O(tail width) to evaluate per point.
    """
    require_positive(num_bins, "num_bins")
    if capacity >= num_requests:
        return float("-inf")
    tail = _log_binomial_tail(num_requests, 1.0 / num_bins, capacity + 1)
    return min(0.0, math.log(num_bins) + tail)


def exact_batch_size(
    num_requests: int,
    num_bins: int,
    security_parameter: int = 128,
) -> int:
    """Smallest capacity with exact-union-bound security >= lambda bits.

    The tight(er) reference point the Theorem 3 closed form approximates;
    evaluated by binary search over the exact tail.
    """
    target = -security_parameter * math.log(2.0)
    lo = math.ceil(num_requests / num_bins)
    hi = num_requests
    while lo < hi:
        mid = (lo + hi) // 2
        if exact_union_bound(num_requests, num_bins, mid) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def bound_comparison(
    num_requests: int, num_bins: int, security_parameter: int = 128
) -> dict:
    """All bounds side by side for one (R, S) point."""
    return {
        "theorem3": batch_size(num_requests, num_bins, security_parameter),
        "exact": exact_batch_size(num_requests, num_bins, security_parameter),
        "berenbrink(alpha=1)": berenbrink_bound(num_requests, num_bins, 1.0),
        "raab_steger(alpha=1)": raab_steger_bound(num_requests, num_bins, 1.0),
    }
