"""Theorem 3: the Lambert-W batch-size bound (§4.1 and Appendix A).

Given ``R`` distinct, randomly distributed requests and ``S`` subORAMs, the
paper sets the per-subORAM batch size to

    f(R, S) = min(R, mu * exp[ W0( e^-1 * (gamma/mu - 1) ) + 1 ])

where ``mu = R/S``, ``gamma = -log(1/(S * 2^lambda)) = ln S + lambda ln 2``
(the derivation uses natural logarithms), and ``W0`` is branch 0 of the
Lambert W function.  With batch size ``f(R, S)`` the probability that *any*
subORAM receives more requests than its batch can hold is at most
``2^-lambda`` (Chernoff bound + union bound over subORAMs).

The same bound sizes the oblivious hash-table buckets in the subORAM (§5),
"exactly the problem that we solved in the load balancer".
"""

from __future__ import annotations

import functools
import math

from scipy.special import lambertw

from repro.utils.validation import require, require_positive

DEFAULT_SECURITY_PARAMETER = 128


@functools.lru_cache(maxsize=65536)
def _batch_size_bound(num_requests: int, num_bins: int, security_parameter: int) -> int:
    """The memoized Lambert-W evaluation behind :func:`batch_size`.

    Arguments arrive pre-validated and pre-normalized (the public wrapper
    substitutes the default ``lambda``), so a call spelled
    ``batch_size(R, S)`` and one spelled ``batch_size(R, S, 128)`` share
    a single cache entry.  The cache matters under the pipelined epoch
    scheduler: every balancer recomputes ``f(R, S)`` each epoch with a
    recurring handful of ``(R, S)`` shapes, and a hit skips the
    ``scipy.special.lambertw`` evaluation entirely.
    """
    if num_requests == 0:
        return 0
    if security_parameter == 0:
        return math.ceil(num_requests / num_bins)
    if num_bins == 1:
        return num_requests

    mu = num_requests / num_bins
    gamma = math.log(num_bins) + security_parameter * math.log(2.0)
    # delta >= exp(W0(e^-1 (gamma/mu - 1)) + 1) - 1; B = (1 + delta) * mu.
    argument = (gamma / mu - 1.0) / math.e
    if argument < -1.0 / math.e:
        # W0 undefined; happens only when gamma < mu * (1 - e) < 0, i.e.
        # never for positive gamma.  Guard anyway.
        return num_requests
    w = float(lambertw(argument, 0).real)
    bound = mu * math.exp(w + 1.0)
    return min(num_requests, math.ceil(bound))


def batch_size(num_requests: int, num_bins: int, security_parameter: int = DEFAULT_SECURITY_PARAMETER) -> int:
    """The paper's ``f(R, S)``: per-bin capacity with negligible overflow.

    Memoized: results are served from an LRU cache keyed on the
    normalized ``(R, S, lambda)`` triple (``batch_size(R, S)`` and
    ``batch_size(R, S, 128)`` hit the same entry); see
    :func:`batch_size_cache_info`.  Validation runs on every call — only
    the Lambert-W evaluation is cached.

    Args:
        num_requests: ``R`` — number of distinct balls (requests).
        num_bins: ``S`` — number of bins (subORAMs or hash buckets).
        security_parameter: ``lambda``; overflow probability <= 2^-lambda.
            ``0`` means "no security margin": plain ``ceil(R/S)`` (the
            paper's lambda=0 line in Fig. 4).

    Returns:
        The batch size ``B`` (an integer; the analytical bound is rounded
        up).  Always ``<= R`` and ``>= ceil(R/S)``.
    """
    require_positive(num_bins, "num_bins")
    require(num_requests >= 0, f"num_requests must be >= 0, got {num_requests}")
    require(security_parameter >= 0, "security_parameter must be >= 0")
    return _batch_size_bound(int(num_requests), int(num_bins), int(security_parameter))


def batch_size_cache_info():
    """Hit/miss statistics of the :func:`batch_size` LRU cache.

    Returns the standard :func:`functools.lru_cache` ``CacheInfo`` named
    tuple (``hits``, ``misses``, ``maxsize``, ``currsize``).  Cache
    occupancy is a function of the ``(R, S, lambda)`` shapes seen — all
    public parameters — so exposing it leaks nothing about request
    contents.
    """
    return _batch_size_bound.cache_info()


def batch_size_cache_clear() -> None:
    """Reset the :func:`batch_size` cache (benchmark/test isolation)."""
    _batch_size_bound.cache_clear()


def log_overflow_probability(num_requests: int, num_bins: int, capacity: int) -> float:
    """Natural log of the Chernoff+union upper bound on overflow probability.

    ``Pr[any bin > capacity] <= S * (e^delta / (1+delta)^(1+delta))^mu``
    with ``1 + delta = capacity / mu``.  Returns ``0.0`` (probability 1)
    when the bound is vacuous and ``-inf`` when overflow is impossible
    (capacity >= R).
    """
    require_positive(num_bins, "num_bins")
    if capacity >= num_requests:
        return float("-inf")
    mu = num_requests / num_bins
    if capacity <= mu:
        return 0.0
    one_plus_delta = capacity / mu
    delta = one_plus_delta - 1.0
    log_per_bin = mu * (delta - one_plus_delta * math.log(one_plus_delta))
    return min(0.0, math.log(num_bins) + log_per_bin)


def overflow_probability(num_requests: int, num_bins: int, capacity: int) -> float:
    """The Chernoff+union overflow bound as a probability (may underflow to 0)."""
    log_p = log_overflow_probability(num_requests, num_bins, capacity)
    if log_p == float("-inf"):
        return 0.0
    return math.exp(log_p)


def security_bits(num_requests: int, num_bins: int, capacity: int) -> float:
    """How many bits of security a given capacity provides: -log2(overflow bound)."""
    log_p = log_overflow_probability(num_requests, num_bins, capacity)
    if log_p == float("-inf"):
        return float("inf")
    return -log_p / math.log(2.0)
