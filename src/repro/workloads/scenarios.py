"""End-to-end application scenarios at production scale (§3.2).

The §3.2 applications — key transparency and private contact discovery
— wired into the scenario factory as *workloads*: million-object
deployments driven by skewed (hot-user / hot-contact) request streams
drawn from :mod:`repro.workloads.generators`.  Skew is the realistic
shape for both apps (popular users get looked up more; viral numbers
get checked more) and exactly the shape Snoopy must not respond to.

Each scenario builds the app on a configurable deployment, drives a
seeded workload, and returns a flat stats dict the benchmark suite
(``benchmarks/bench_workloads.py`` → ``BENCH_workloads.json``) and the
CLI can serialize directly.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional

from repro.core.config import SnoopyConfig
from repro.workloads.generators import ZipfSampler, key_rng


def key_transparency_scenario(
    num_users: int = 1 << 19,
    lookups: int = 24,
    *,
    seed: int = 0,
    num_suborams: int = 4,
    backend: str = "thread:4",
    kernel: str = "numpy",
    security_parameter: int = 32,
    hot_exponent: float = 1.1,
) -> Dict[str, object]:
    """Private key lookups over a Merkle-tree log (Fig. 9b's app).

    ``num_users = 2**19`` stores ~1.57M objects (two tree levels of
    nodes plus the user keys) — past the 1M-object mark the paper's
    large-scale experiments use.  Lookups target Zipf-hot users: the
    verifier checks every proof, so correctness is end-to-end.
    """
    from repro.apps.key_transparency import KeyTransparencyLog

    users = {
        user: user.to_bytes(4, "big") * 8 for user in range(1, num_users + 1)
    }
    config = SnoopyConfig(
        num_load_balancers=1,
        num_suborams=num_suborams,
        value_size=32,
        security_parameter=security_parameter,
        execution_backend=backend,
        kernel=kernel,
    )
    build_started = time.perf_counter()
    log = KeyTransparencyLog(users, config=config)
    build_s = time.perf_counter() - build_started
    try:
        sampler = ZipfSampler(num_users, hot_exponent, key_rng(seed))
        verified = 0
        lookup_started = time.perf_counter()
        for _ in range(lookups):
            user = 1 + sampler.sample()
            proof = log.lookup(user)
            if log.verify_lookup(proof):
                verified += 1
        lookup_s = time.perf_counter() - lookup_started
        return {
            "scenario": "key_transparency",
            "num_users": num_users,
            "num_objects": log.num_objects,
            "accesses_per_lookup": log.accesses_per_lookup(),
            "lookups": lookups,
            "verified": verified,
            "build_s": build_s,
            "lookup_s": lookup_s,
            "lookups_per_s": lookups / lookup_s if lookup_s > 0 else 0.0,
            "backend": backend,
            "kernel": kernel,
            "num_suborams": num_suborams,
        }
    finally:
        log.store.close()


def contact_discovery_scenario(
    key_space: int = 1 << 20,
    registered: int = 100_000,
    *,
    batches: int = 4,
    contacts_per_batch: int = 48,
    seed: int = 0,
    num_suborams: int = 4,
    backend: str = "thread:4",
    kernel: str = "numpy",
    security_parameter: int = 32,
    hot_exponent: float = 1.2,
) -> Dict[str, object]:
    """Private contact discovery over a million-bucket directory (§5).

    Registration state is the oblivious store (``key_space`` buckets —
    the object count); discovery batches draw Zipf-hot contacts, so
    duplicates occur and the §4.1 deduplication path is on the hot
    path, exactly the mechanism that makes skew invisible.
    """
    from repro.apps.contact_discovery import ContactDiscoveryService

    config = SnoopyConfig(
        num_load_balancers=1,
        num_suborams=num_suborams,
        value_size=16,
        security_parameter=security_parameter,
        execution_backend=backend,
        kernel=kernel,
    )
    service = ContactDiscoveryService(key_space=key_space, config=config)
    phone = "+1-555-{:08d}".format
    registration_rng = random.Random(seed)
    numbers = [
        phone(registration_rng.randrange(10 ** 8)) for _ in range(registered)
    ]
    build_started = time.perf_counter()
    service.initialize(numbers)
    build_s = time.perf_counter() - build_started
    try:
        sampler = ZipfSampler(10 ** 6, hot_exponent, key_rng(seed))
        hits = queries = duplicate_contacts = 0
        discover_started = time.perf_counter()
        for _ in range(batches):
            contacts = [
                phone(sampler.sample() * 97 % (10 ** 8))
                for _ in range(contacts_per_batch)
            ]
            duplicate_contacts += len(contacts) - len(set(contacts))
            found = service.discover(contacts)
            queries += len(contacts)
            hits += sum(1 for present in found.values() if present)
        discover_s = time.perf_counter() - discover_started
        return {
            "scenario": "contact_discovery",
            "key_space": key_space,
            "num_objects": key_space,
            "registered": registered,
            "batches": batches,
            "contacts_per_batch": contacts_per_batch,
            "duplicate_contacts": duplicate_contacts,
            "queries": queries,
            "hits": hits,
            "build_s": build_s,
            "discover_s": discover_s,
            "queries_per_s": (
                queries / discover_s if discover_s > 0 else 0.0
            ),
            "backend": backend,
            "kernel": kernel,
            "num_suborams": num_suborams,
        }
    finally:
        service.store.close()
