"""Seeded request generators: key distributions behind a fixed shape.

The paper benchmarks with a uniform request distribution and notes that
— because the system is oblivious — the distribution cannot affect
performance (§8, "Experiment Setup"); the load balancer's deduplication
specifically neutralizes hot keys (§4.1).  Skew is therefore exactly
where the obliviousness guarantee *bites*: an adversarial workload must
look identical to a uniform one in every public signal.  This module is
built so that claim is checkable **by construction**:

Every generator splits its seed into two independent streams:

* the **shape stream** decides everything public — the read/write flag
  of each slot, the written bytes, the target load balancer;
* the **key stream** feeds the distribution-specific sampler — which
  object each request touches.

Two workloads generated with the same ``(count, seed, write_fraction,
value_size)`` but different distributions are then *identical in shape*
(same op sequence, same values, same balancers) and differ only in the
keys they access — precisely the "same shape, different access pattern"
pair the skew-insensitivity differential tests compare.

Distributions:

* ``uniform`` — every key equally likely;
* ``zipf`` — rank-frequency skew with exponent ``zipf_exponent``
  (``s >= 1.0`` is a heavy hot-key head, the adversarial case for
  batch overflow and the one Cloak-style optimizers exploit);
* ``tenant`` — a multi-tenant mix: each tenant owns a **disjoint** key
  range and draws from its own distribution, weighted by traffic share
  (requests carry the tenant id as ``client_id``).

Read/write-ratio sweeps are spec families, not a distribution:
:func:`write_ratio_sweep` clones a spec across write fractions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import OpType, Request
from repro.utils.validation import require, require_positive

#: XOR-salt separating the key stream from the shape stream.  An int so
#: the derivation is stable across processes (no PYTHONHASHSEED).
_KEY_STREAM_SALT = 0x5EED_0B1A_5E55

#: Distribution names accepted by :class:`WorkloadSpec`.
DISTRIBUTIONS = ("uniform", "zipf", "tenant")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant mix.

    Attributes:
        tenant_id: carried on every request as ``client_id``.
        num_keys: size of the tenant's private key range.  Ranges are
            laid out back to back in spec order, so tenants are
            disjoint by construction.
        weight: relative traffic share (need not be normalized).
        distribution: per-tenant key distribution (``uniform``/``zipf``).
        zipf_exponent: exponent when ``distribution == "zipf"``.
    """

    tenant_id: int
    num_keys: int
    weight: float = 1.0
    distribution: str = "uniform"
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.num_keys, "tenant num_keys")
        require(self.weight > 0, "tenant weight must be positive")
        require(
            self.distribution in ("uniform", "zipf"),
            f"unknown tenant distribution {self.distribution!r}",
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Public description of a synthetic workload (its *shape* knobs).

    Attributes:
        distribution: one of :data:`DISTRIBUTIONS`.
        num_keys: key-space size (ignored for ``tenant``, where the
            space is the concatenation of the tenant ranges).
        write_fraction: probability a slot is a write (shape stream).
        value_size: written-value size in bytes.
        zipf_exponent: skew exponent for ``zipf``.
        tenants: the tenant mix for ``tenant``.
    """

    distribution: str = "uniform"
    num_keys: int = 1024
    write_fraction: float = 0.5
    value_size: int = 160
    zipf_exponent: float = 1.0
    tenants: Tuple[TenantSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(
            self.distribution in DISTRIBUTIONS,
            f"unknown distribution {self.distribution!r}; "
            f"valid: {list(DISTRIBUTIONS)}",
        )
        require(
            0.0 <= self.write_fraction <= 1.0,
            "write_fraction must be in [0, 1]",
        )
        require_positive(self.value_size, "value_size")
        if self.distribution == "tenant":
            require(len(self.tenants) >= 1, "tenant mix needs >= 1 tenant")
            ids = [t.tenant_id for t in self.tenants]
            require(
                len(ids) == len(set(ids)), "tenant ids must be unique"
            )
        else:
            require_positive(self.num_keys, "num_keys")
            require(
                self.zipf_exponent > 0, "zipf_exponent must be positive"
            )

    @property
    def total_keys(self) -> int:
        """Size of the full key space the workload can touch."""
        if self.distribution == "tenant":
            return sum(t.num_keys for t in self.tenants)
        return self.num_keys

    def key_ranges(self) -> List[Tuple[int, int, int]]:
        """``(tenant_id, lo, hi)`` half-open key ranges, disjoint.

        Non-tenant specs report one range for pseudo-tenant 0.
        """
        if self.distribution != "tenant":
            return [(0, 0, self.num_keys)]
        ranges, base = [], 0
        for tenant in self.tenants:
            ranges.append((tenant.tenant_id, base, base + tenant.num_keys))
            base += tenant.num_keys
        return ranges

    def to_dict(self) -> Dict[str, object]:
        """A canonical JSON-ready rendering (trace headers, tuner IDs)."""
        spec: Dict[str, object] = {
            "distribution": self.distribution,
            "num_keys": self.num_keys,
            "write_fraction": self.write_fraction,
            "value_size": self.value_size,
            "zipf_exponent": self.zipf_exponent,
        }
        if self.tenants:
            spec["tenants"] = [
                {
                    "tenant_id": t.tenant_id,
                    "num_keys": t.num_keys,
                    "weight": t.weight,
                    "distribution": t.distribution,
                    "zipf_exponent": t.zipf_exponent,
                }
                for t in self.tenants
            ]
        return spec

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict`."""
        tenants = tuple(
            TenantSpec(**tenant) for tenant in spec.get("tenants", [])
        )
        return cls(
            distribution=str(spec.get("distribution", "uniform")),
            num_keys=int(spec.get("num_keys", 1024)),
            write_fraction=float(spec.get("write_fraction", 0.5)),
            value_size=int(spec.get("value_size", 160)),
            zipf_exponent=float(spec.get("zipf_exponent", 1.0)),
            tenants=tenants,
        )


# ---------------------------------------------------------------------------
# Key samplers (the key-stream side)
# ---------------------------------------------------------------------------
class UniformSampler:
    """Uniform keys over ``[0, num_keys)``."""

    def __init__(self, num_keys: int, rng: Optional[random.Random] = None):
        require_positive(num_keys, "num_keys")
        self._num_keys = num_keys
        self._rng = rng if rng is not None else random.Random()

    def sample(self) -> int:
        """Draw one key."""
        return self._rng.randrange(self._num_keys)


class ZipfSampler:
    """Zipf(s) sampler over ``[0, n)`` via inverse-CDF binary search.

    Rank 0 is the hottest key: ``P(rank) ∝ (rank + 1) ** -s``.  The
    weight table is exact (no sampling), so rank-frequency monotonicity
    is a structural property — :meth:`weights` exposes it for tests.
    """

    def __init__(self, num_keys: int, exponent: float = 1.0,
                 rng: Optional[random.Random] = None):
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self._rng = rng if rng is not None else random.Random()
        self._weights = [
            1.0 / (rank ** exponent) for rank in range(1, num_keys + 1)
        ]
        total = 0.0
        self._cdf = []
        for w in self._weights:
            total += w
            self._cdf.append(total)
        self._total = total

    def weights(self) -> List[float]:
        """The exact per-rank weights (strictly decreasing)."""
        return list(self._weights)

    def sample(self) -> int:
        """Draw one Zipf-distributed key (rank 0 hottest)."""
        target = self._rng.random() * self._total
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo


class TenantSampler:
    """Weighted multi-tenant sampler over disjoint key ranges."""

    def __init__(self, spec: WorkloadSpec, rng: Optional[random.Random] = None):
        require(spec.tenants, "TenantSampler needs a tenant mix")
        self._rng = rng if rng is not None else random.Random()
        self._bases: List[int] = []
        self._samplers: List[object] = []
        self._tenant_ids: List[int] = []
        cumulative, self._cum_weights = 0.0, []
        base = 0
        for tenant in spec.tenants:
            self._tenant_ids.append(tenant.tenant_id)
            self._bases.append(base)
            if tenant.distribution == "zipf":
                sampler = ZipfSampler(
                    tenant.num_keys, tenant.zipf_exponent, self._rng
                )
            else:
                sampler = UniformSampler(tenant.num_keys, self._rng)
            self._samplers.append(sampler)
            base += tenant.num_keys
            cumulative += tenant.weight
            self._cum_weights.append(cumulative)
        self._total_weight = cumulative

    def sample_with_tenant(self) -> Tuple[int, int]:
        """Draw ``(key, tenant_id)`` — key offset into the tenant range."""
        target = self._rng.random() * self._total_weight
        index = 0
        while self._cum_weights[index] < target:
            index += 1
        key = self._bases[index] + self._samplers[index].sample()
        return key, self._tenant_ids[index]

    def sample(self) -> int:
        """Draw one key (tenant chosen by weight)."""
        return self.sample_with_tenant()[0]


def make_sampler(spec: WorkloadSpec, rng: random.Random):
    """Build the key sampler a spec describes, drawing from ``rng``."""
    if spec.distribution == "uniform":
        return UniformSampler(spec.num_keys, rng)
    if spec.distribution == "zipf":
        return ZipfSampler(spec.num_keys, spec.zipf_exponent, rng)
    return TenantSampler(spec, rng)


# ---------------------------------------------------------------------------
# Request generation (shape stream x key stream)
# ---------------------------------------------------------------------------
def shape_rng(seed: int) -> random.Random:
    """The shape stream for ``seed`` (ops, values, balancers)."""
    return random.Random(seed)


def key_rng(seed: int) -> random.Random:
    """The key stream for ``seed`` — independent of the shape stream."""
    return random.Random(seed ^ _KEY_STREAM_SALT)


def generate_requests(
    spec: WorkloadSpec,
    count: int,
    seed: int,
    *,
    start_seq: int = 0,
    client_id: int = 0,
) -> List[Request]:
    """``count`` seeded requests drawn from ``spec``.

    Shape (op flags, values) comes from the shape stream, keys from the
    key stream: same ``(count, seed)`` across distributions ⇒ identical
    shape.  Tenant workloads override ``client_id`` with the tenant id.
    """
    shapes, keys = shape_rng(seed), key_rng(seed)
    sampler = make_sampler(spec, keys)
    tenant_mode = spec.distribution == "tenant"
    requests = []
    for i in range(count):
        seq = start_seq + i
        if tenant_mode:
            key, tenant = sampler.sample_with_tenant()
            owner = tenant
        else:
            key, owner = sampler.sample(), client_id
        if shapes.random() < spec.write_fraction:
            value = bytes(
                shapes.getrandbits(8) for _ in range(spec.value_size)
            )
            requests.append(Request(
                OpType.WRITE, key, value, client_id=owner, seq=seq
            ))
        else:
            requests.append(Request(
                OpType.READ, key, client_id=owner, seq=seq
            ))
    return requests


def generate_schedule(
    spec: WorkloadSpec,
    num_epochs: int,
    per_epoch: int,
    seed: int,
    *,
    num_balancers: int = 1,
) -> List[List[Tuple[Request, int]]]:
    """A multi-epoch ``(request, load_balancer)`` schedule.

    The harness-shaped counterpart of :func:`generate_requests`:
    balancer assignment comes from the shape stream, so schedules of
    different distributions stay shape-identical epoch by epoch.
    """
    require_positive(num_balancers, "num_balancers")
    shapes, keys = shape_rng(seed), key_rng(seed)
    sampler = make_sampler(spec, keys)
    tenant_mode = spec.distribution == "tenant"
    epochs: List[List[Tuple[Request, int]]] = []
    for _ in range(num_epochs):
        slots = []
        for i in range(per_epoch):
            balancer = shapes.randrange(num_balancers)
            if tenant_mode:
                key, owner = sampler.sample_with_tenant()
            else:
                key, owner = sampler.sample(), 0
            if shapes.random() < spec.write_fraction:
                value = bytes(
                    shapes.getrandbits(8) for _ in range(spec.value_size)
                )
                request = Request(
                    OpType.WRITE, key, value, client_id=owner, seq=i
                )
            else:
                request = Request(OpType.READ, key, client_id=owner, seq=i)
            slots.append((request, balancer))
        epochs.append(slots)
    return epochs


def write_ratio_sweep(
    spec: WorkloadSpec, fractions: Sequence[float]
) -> List[WorkloadSpec]:
    """The spec family sweeping ``write_fraction`` over ``fractions``."""
    return [replace(spec, write_fraction=f) for f in fractions]


def parse_workload_spec(
    text: str,
    *,
    num_keys: int = 1024,
    write_fraction: float = 0.5,
    value_size: int = 160,
) -> WorkloadSpec:
    """Parse a CLI workload shorthand into a :class:`WorkloadSpec`.

    Accepted forms (``--workload`` on ``python -m repro loadgen``):

    * ``uniform``
    * ``zipf`` or ``zipf:1.2`` (exponent after the colon)
    * ``tenant:8x1024`` — N equal-weight uniform tenants of K keys each
    * a path to a JSON file holding :meth:`WorkloadSpec.to_dict` output

    The keyword defaults fill in whatever the shorthand leaves open, so
    the CLI's ``--keys/--write-fraction`` flags keep working.
    """
    import json as _json
    import os as _os

    if text.endswith(".json") or _os.path.sep in text:
        with open(text, "r", encoding="utf-8") as handle:
            return WorkloadSpec.from_dict(_json.load(handle))
    name, _, param = text.partition(":")
    if name == "uniform":
        return WorkloadSpec(
            distribution="uniform", num_keys=num_keys,
            write_fraction=write_fraction, value_size=value_size,
        )
    if name == "zipf":
        return WorkloadSpec(
            distribution="zipf", num_keys=num_keys,
            write_fraction=write_fraction, value_size=value_size,
            zipf_exponent=float(param) if param else 1.0,
        )
    if name == "tenant":
        count_text, _, keys_text = param.partition("x")
        count = int(count_text) if count_text else 4
        per_tenant = int(keys_text) if keys_text else max(
            1, num_keys // max(1, count)
        )
        return WorkloadSpec(
            distribution="tenant",
            write_fraction=write_fraction, value_size=value_size,
            tenants=tuple(
                TenantSpec(tenant_id=i + 1, num_keys=per_tenant)
                for i in range(count)
            ),
        )
    raise ValueError(
        f"unknown workload {text!r}; expected uniform, zipf[:s], "
        "tenant[:NxK], or a spec JSON path"
    )


# ---------------------------------------------------------------------------
# Legacy single-stream entry points (kept for repro.sim.workload shims)
# ---------------------------------------------------------------------------
def uniform_requests(
    count: int,
    num_keys: int,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Uniform reads/writes drawn from one caller-supplied RNG.

    The historical (pre-``WorkloadSpec``) surface; new code should use
    :func:`generate_requests`, whose split seed streams make shape
    comparable across distributions.
    """
    rng = rng if rng is not None else random.Random()
    sampler = UniformSampler(num_keys, rng)
    return _legacy_requests(sampler, count, write_fraction, value_size, rng)


def zipf_requests(
    count: int,
    num_keys: int,
    exponent: float = 1.0,
    write_fraction: float = 0.5,
    value_size: int = 160,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Zipf-skewed reads/writes drawn from one caller-supplied RNG.

    Historical surface; see :func:`uniform_requests`.
    """
    rng = rng if rng is not None else random.Random()
    sampler = ZipfSampler(num_keys, exponent, rng)
    return _legacy_requests(sampler, count, write_fraction, value_size, rng)


def _legacy_requests(sampler, count, write_fraction, value_size, rng):
    requests = []
    for seq in range(count):
        key = sampler.sample()
        if rng.random() < write_fraction:
            value = bytes(rng.getrandbits(8) for _ in range(value_size))
            requests.append(Request(OpType.WRITE, key, value, seq=seq))
        else:
            requests.append(Request(OpType.READ, key, seq=seq))
    return requests
