"""Replay-driven configuration tuner: sweep configs against a trace.

Given a recorded trace (:mod:`repro.workloads.trace`), the tuner sweeps
candidate configurations over the public performance knobs —
``epoch_duration``, ``pipeline_depth``, ``kernel``, ``execution
backend``, ``replication`` — and emits the best one as JSON.

Two evaluation layers, deliberately separated:

* **Model scoring (deterministic).**  Every candidate is scored with
  the §6 analytic cost model (:mod:`repro.sim.costmodel`) applied to
  the trace's arrival statistics, adjusted by the measured kernel
  speedup and the backend's batch-level parallelism.  Same trace +
  same sweep ⇒ byte-identical ranking and best-config JSON
  (:meth:`TunerResult.best_config_json`), which is what the
  determinism tests compare and what CI can diff.
* **Replay verification (measured).**  The winning candidate and the
  library-default configuration are then actually replayed against the
  trace in process (:func:`replay_trace`) and the measured
  requests/second recorded alongside.  The emitted report carries both
  numbers; re-replaying the emitted config must land within
  ``REPRODUCTION_TOLERANCE`` of the reported measurement (the
  ``python -m repro tune --verify`` bar).

The knobs the tuner sweeps are all *public information* (§2.1): it
only ever reads the trace's shape and timing, never which keys are hot
— an oblivious deployment gives it nothing key-dependent to exploit,
and the skew-insensitivity tests hold that line.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.balls_bins import batch_size
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.oblivious import soa
from repro.sim.costmodel import load_balancer_time, suboram_time
from repro.workloads.trace import Trace

#: Measured end-to-end epoch speedup of the vectorized kernel over the
#: scalar reference (BENCH_kernels.json / BENCH_aead.json: 5.6-7.2x at
#: S=8; the model uses the conservative end-to-end figure).
KERNEL_SPEEDUP = {"python": 1.0, "numpy": 5.6}

#: Relative wall-clock tolerance for ``--verify`` re-replays.
REPRODUCTION_TOLERANCE = 0.10


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the sweep: the public performance knobs."""

    epoch_duration: float = 0.2
    pipeline_depth: int = 2
    kernel: str = "python"
    backend: str = "serial"
    replication: Optional[Tuple[int, int]] = None

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready rendering (sweep IDs, emitted configs)."""
        return {
            "backend": self.backend,
            "epoch_duration": self.epoch_duration,
            "kernel": self.kernel,
            "pipeline_depth": self.pipeline_depth,
            "replication": (
                list(self.replication) if self.replication else None
            ),
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "CandidateConfig":
        """Inverse of :meth:`to_dict` (reads emitted config JSON)."""
        replication = obj.get("replication")
        return cls(
            epoch_duration=float(obj["epoch_duration"]),
            pipeline_depth=int(obj["pipeline_depth"]),
            kernel=str(obj["kernel"]),
            backend=str(obj["backend"]),
            replication=tuple(replication) if replication else None,
        )

    def sort_key(self) -> Tuple:
        """Deterministic tie-break order (prefer low latency, less gear)."""
        return (
            self.epoch_duration,
            self.pipeline_depth,
            _backend_workers(self.backend),
            self.kernel,
            self.backend,
            self.replication or (0, 0),
        )


#: The library's out-of-the-box configuration, as a candidate — the
#: baseline the tuner's winner must beat on its own trace.
DEFAULT_CANDIDATE = CandidateConfig(
    epoch_duration=SnoopyConfig.epoch_duration,
    pipeline_depth=1,
    kernel=SnoopyConfig.kernel,
    backend=SnoopyConfig.execution_backend,
    replication=None,
)


@dataclass(frozen=True)
class TunerSweep:
    """The candidate grid (cartesian product of the axis tuples)."""

    epoch_durations: Tuple[float, ...] = (0.05, 0.1, 0.2)
    pipeline_depths: Tuple[int, ...] = (1, 2)
    kernels: Tuple[str, ...] = ("python", "numpy")
    backends: Tuple[str, ...] = ("serial", "thread:4")
    replications: Tuple[Optional[Tuple[int, int]], ...] = (None,)

    def candidates(self) -> List[CandidateConfig]:
        """Every grid point, in deterministic axis order.

        ``numpy`` cells are dropped when NumPy is unavailable (the
        deployment would fall back to python anyway, making the cell a
        duplicate with a misleading label).
        """
        kernels = tuple(
            k for k in self.kernels if k != "numpy" or soa.HAS_NUMPY
        ) or ("python",)
        return [
            CandidateConfig(
                epoch_duration=duration,
                pipeline_depth=depth,
                kernel=kernel,
                backend=backend,
                replication=replication,
            )
            for duration in self.epoch_durations
            for depth in self.pipeline_depths
            for kernel in kernels
            for backend in self.backends
            for replication in self.replications
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering of the sweep grid (report provenance)."""
        return {
            "backends": list(self.backends),
            "epoch_durations": list(self.epoch_durations),
            "kernels": list(self.kernels),
            "pipeline_depths": list(self.pipeline_depths),
            "replications": [
                list(r) if r else None for r in self.replications
            ],
        }


def _backend_workers(spec: str) -> int:
    """Usable batch-level parallelism of an execution-backend spec."""
    name, _, suffix = spec.partition(":")
    if name == "serial":
        return 1
    if suffix:
        return max(1, int(suffix))
    return 4  # the pooled backends' effective default for small fleets


# ---------------------------------------------------------------------------
# Deterministic model scoring
# ---------------------------------------------------------------------------
def modelled_epoch_seconds(
    candidate: CandidateConfig,
    requests_per_epoch: int,
    *,
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    security_parameter: int,
    value_size: int,
) -> Dict[str, float]:
    """Analytic per-epoch stage times for one candidate.

    Returns ``{"build_match": .., "execute": .., "epoch": ..}`` where
    ``epoch`` accounts for pipelining: at depth >= 2 the §6 pipeline
    overlaps the balancer's build/match with subORAM execution, so the
    bottleneck stage sets the cadence; at depth 1 stages serialize.
    """
    per_balancer = max(1, math.ceil(
        requests_per_epoch / max(1, num_load_balancers)
    ))
    speedup = KERNEL_SPEEDUP.get(candidate.kernel, 1.0)
    build_match = load_balancer_time(
        per_balancer, num_suborams, security_parameter,
        object_size=value_size,
    ) / speedup
    batch = batch_size(per_balancer, num_suborams, security_parameter)
    per_partition = max(1, math.ceil(num_objects / num_suborams))
    one_batch = suboram_time(
        batch, per_partition, security_parameter, object_size=value_size,
    ) / speedup
    # Each subORAM executes one batch per balancer; the backend pool
    # overlaps (balancer, subORAM) tasks up to its worker count, and a
    # replica group multiplies the work by its size.
    group = 1
    if candidate.replication is not None:
        f, r = candidate.replication
        group = f + r + 1
    tasks = num_load_balancers * num_suborams * group
    waves = math.ceil(tasks / min(_backend_workers(candidate.backend), tasks))
    execute = one_batch * waves
    if candidate.pipeline_depth >= 2:
        epoch = max(build_match, execute)
    else:
        epoch = build_match + execute
    return {"build_match": build_match, "execute": execute, "epoch": epoch}


def score_candidate(
    candidate: CandidateConfig,
    trace: Trace,
    *,
    num_load_balancers: int,
    num_suborams: int,
    num_objects: int,
    security_parameter: int,
) -> Dict[str, object]:
    """Deterministic score of one candidate against a trace.

    ``modelled_rps`` is the sustainable service rate (mean epoch load
    over modelled epoch time); ``feasible`` asks Eq. (1)'s question at
    the trace's *peak* epoch — can the config drain its worst epoch
    within one period?
    """
    value_size = trace.spec.value_size if trace.spec else 160
    rate = trace.mean_rate
    mean_load = max(1, math.ceil(rate * candidate.epoch_duration))
    groups = trace.epoch_groups(candidate.epoch_duration)
    peak_load = max((len(g) for g in groups), default=1) or 1
    mean_times = modelled_epoch_seconds(
        candidate, mean_load,
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        num_objects=num_objects,
        security_parameter=security_parameter,
        value_size=value_size,
    )
    peak_times = modelled_epoch_seconds(
        candidate, peak_load,
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        num_objects=num_objects,
        security_parameter=security_parameter,
        value_size=value_size,
    )
    return {
        "config": candidate.to_dict(),
        "modelled_rps": mean_load / max(mean_times["epoch"], 1e-12),
        "modelled_epoch_s": mean_times["epoch"],
        "peak_epoch_load": peak_load,
        "feasible": peak_times["epoch"] <= candidate.epoch_duration,
    }


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayResult:
    """What one in-process replay of a trace produced."""

    requests: int
    epochs: int
    elapsed_s: float
    rps: float
    response_digest: str


def replay_trace(
    trace: Trace,
    candidate: CandidateConfig,
    *,
    num_load_balancers: int = 1,
    num_suborams: int = 2,
    security_parameter: int = 32,
    master: bytes = b"workload-replay-master-key-.....",
    rng_seed: int = 5,
    objects: Optional[Dict[int, bytes]] = None,
) -> ReplayResult:
    """Replay a trace against one candidate configuration, in process.

    Records are grouped into epochs by arrival time
    (:meth:`Trace.epoch_groups` at the candidate's ``epoch_duration``)
    and the epochs run back to back at full speed — a capacity
    measurement, not a latency simulation.  Depth >= 2 drives the §6
    pipeline (manual epoch closes, deterministic); depth 1 runs
    sequentially.  The response digest ties a replay to the bytes it
    served, so two replays of the same trace are checkably identical.
    """
    spec = trace.spec
    value_size = spec.value_size if spec is not None else 160
    if objects is None:
        num_keys = spec.total_keys if spec is not None else (
            max((r.key for r in trace.records), default=0) + 1
        )
        objects = {key: bytes(value_size) for key in range(num_keys)}
    config = SnoopyConfig(
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        value_size=value_size,
        security_parameter=security_parameter,
        epoch_duration=candidate.epoch_duration,
        pipeline_depth=max(1, candidate.pipeline_depth),
        execution_backend=candidate.backend,
        kernel=candidate.kernel,
        replication=candidate.replication,
    )
    groups = trace.epoch_groups(candidate.epoch_duration)
    digest = hashlib.sha256()
    with Snoopy(
        config, keychain=KeyChain(master=master), rng=random.Random(rng_seed)
    ) as store:
        store.initialize(dict(objects))
        tickets = []
        started = time.perf_counter()
        if candidate.pipeline_depth >= 2:
            pipeline = store.start_pipeline(
                depth=candidate.pipeline_depth, clock=False
            )
            try:
                for group in groups:
                    for record in group:
                        tickets.append(store.submit(record.to_request()))
                    pipeline.close_epoch()
                pipeline.flush()
            finally:
                pipeline.stop()
        else:
            for group in groups:
                for record in group:
                    tickets.append(store.submit(record.to_request()))
                store.run_epoch()
        elapsed = time.perf_counter() - started
        for ticket in tickets:
            response = ticket.result()
            digest.update(
                f"{response.key}|{response.seq}|{response.client_id}|"
                f"{int(response.ok)}|".encode("ascii")
            )
            digest.update(response.value or b"\x00")
    total = len(trace.records)
    return ReplayResult(
        requests=total,
        epochs=len(groups),
        elapsed_s=elapsed,
        rps=total / elapsed if elapsed > 0 else 0.0,
        response_digest=digest.hexdigest(),
    )


def _best_of(
    trace: Trace, candidate: CandidateConfig, repeats: int, **kwargs
) -> ReplayResult:
    """Fastest of ``repeats`` replays (noise only ever slows a run)."""
    runs = [
        replay_trace(trace, candidate, **kwargs) for _ in range(max(1, repeats))
    ]
    digests = {run.response_digest for run in runs}
    if len(digests) != 1:
        raise AssertionError(
            f"replay nondeterminism: {len(digests)} distinct response "
            "digests for one trace/config"
        )
    return min(runs, key=lambda run: run.elapsed_s)


# ---------------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------------
@dataclass
class TunerResult:
    """Everything one tuning run decided and measured."""

    trace_checksum: str
    sweep: TunerSweep
    best: CandidateConfig
    scores: List[Dict[str, object]]
    deployment: Dict[str, object]
    measured: Optional[Dict[str, object]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def best_config_dict(self) -> Dict[str, object]:
        """The deterministic part: config choice + model evidence."""
        best_score = next(
            s for s in self.scores if s["config"] == self.best.to_dict()
        )
        return {
            "best": self.best.to_dict(),
            "deployment": self.deployment,
            "modelled_rps": best_score["modelled_rps"],
            "feasible": best_score["feasible"],
            "sweep": self.sweep.to_dict(),
            "trace_checksum": self.trace_checksum,
            "tuner_version": 1,
        }

    def best_config_json(self) -> str:
        """Canonical JSON of :meth:`best_config_dict` — byte-stable.

        Same trace + same sweep always renders the same bytes (the
        determinism contract); measured wall-clock numbers live in
        :meth:`report`, not here.
        """
        return json.dumps(
            self.best_config_dict(), sort_keys=True, separators=(",", ":")
        ) + "\n"

    def report(self) -> Dict[str, object]:
        """The full report: deterministic choice + measured replays."""
        report = self.best_config_dict()
        report["scores"] = self.scores
        report["measured"] = self.measured
        report["meta"] = self.meta
        return report


def tune(
    trace: Trace,
    *,
    sweep: Optional[TunerSweep] = None,
    num_load_balancers: int = 1,
    num_suborams: int = 2,
    num_objects: Optional[int] = None,
    security_parameter: int = 32,
    measure: bool = True,
    repeats: int = 2,
) -> TunerResult:
    """Sweep the candidate grid against ``trace``; return the best config.

    Selection is purely model-based (deterministic; see module
    docstring).  Feasible candidates (peak epoch drains within one
    period) beat infeasible ones; within a class, higher modelled
    throughput wins, ties broken toward lower epoch_duration / less
    hardware.  With ``measure=True`` the winner and the library default
    are then replayed for real and the measured rps attached.
    """
    sweep = sweep if sweep is not None else TunerSweep()
    if num_objects is None:
        num_objects = trace.spec.total_keys if trace.spec else (
            max((r.key for r in trace.records), default=0) + 1
        )
    deployment = {
        "num_load_balancers": num_load_balancers,
        "num_objects": num_objects,
        "num_suborams": num_suborams,
        "security_parameter": security_parameter,
    }
    candidates = sweep.candidates()
    scores = [
        score_candidate(
            candidate, trace,
            num_load_balancers=num_load_balancers,
            num_suborams=num_suborams,
            num_objects=num_objects,
            security_parameter=security_parameter,
        )
        for candidate in candidates
    ]
    ranked = sorted(
        zip(candidates, scores),
        key=lambda pair: (
            not pair[1]["feasible"],
            -pair[1]["modelled_rps"],
            pair[0].sort_key(),
        ),
    )
    best = ranked[0][0]
    result = TunerResult(
        trace_checksum=trace.checksum(),
        sweep=sweep,
        best=best,
        scores=scores,
        deployment=deployment,
    )
    if measure:
        replay_kwargs = dict(
            num_load_balancers=num_load_balancers,
            num_suborams=num_suborams,
            security_parameter=security_parameter,
        )
        best_run = _best_of(trace, best, repeats, **replay_kwargs)
        default_run = _best_of(
            trace, DEFAULT_CANDIDATE, repeats, **replay_kwargs
        )
        result.measured = {
            "best_rps": best_run.rps,
            "best_elapsed_s": best_run.elapsed_s,
            "default_config": DEFAULT_CANDIDATE.to_dict(),
            "default_rps": default_run.rps,
            "default_elapsed_s": default_run.elapsed_s,
            "response_digest": best_run.response_digest,
            "repeats": max(1, repeats),
            "speedup_over_default": (
                best_run.rps / default_run.rps if default_run.rps else 0.0
            ),
        }
    return result


def verify_reproduction(
    trace: Trace,
    result: TunerResult,
    *,
    repeats: int = 2,
    tolerance: float = REPRODUCTION_TOLERANCE,
) -> Dict[str, object]:
    """Re-replay an emitted config; check it reproduces the measurement.

    Returns ``{"reported_rps", "replayed_rps", "relative_error",
    "within_tolerance", "digest_matches"}`` — the ``--verify`` verdict.
    Requires a measured result.
    """
    if result.measured is None:
        raise ValueError("verify_reproduction needs a measured TunerResult")
    run = _best_of(
        trace, result.best, repeats,
        num_load_balancers=result.deployment["num_load_balancers"],
        num_suborams=result.deployment["num_suborams"],
        security_parameter=result.deployment["security_parameter"],
    )
    reported = result.measured["best_rps"]
    error = abs(run.rps - reported) / reported if reported else 1.0
    return {
        "reported_rps": reported,
        "replayed_rps": run.rps,
        "relative_error": error,
        "within_tolerance": error <= tolerance,
        "digest_matches": (
            run.response_digest == result.measured["response_digest"]
        ),
    }
