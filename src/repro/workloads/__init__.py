"""The scenario factory: workloads, traces, and the replay tuner.

One uniform-random stream stops being interesting the moment a system
claims *insensitivity* to workload shape.  This package turns the repo
into a scenario platform:

* :mod:`repro.workloads.generators` — seeded request generators
  (uniform, Zipf hot-key, multi-tenant mixes over disjoint key ranges,
  write-ratio sweeps) built on a **shape/key RNG split**: workloads
  with the same seed but different distributions are identical in
  everything public (ops, values, balancers, timing) and differ only
  in which keys they touch — the exact pair the skew-insensitivity
  differential compares.
* :mod:`repro.workloads.arrivals` — open-loop arrival processes
  (Poisson, bursty, diurnal sine, flash-crowd spikes), deterministic
  under a fixed seed.
* :mod:`repro.workloads.trace` — a versioned JSONL trace format with
  byte-stable record→replay round-trips and checksummed identity.
* :mod:`repro.workloads.tuner` — a replay-driven auto-tuner sweeping
  (epoch_duration, pipeline_depth, kernel, backend, replication)
  against a trace: deterministic model-based selection, measured
  replay verification, best config emitted as JSON
  (``python -m repro tune``).
* :mod:`repro.workloads.scenarios` — the §3.2 applications (key
  transparency, contact discovery) as million-object end-to-end
  scenarios under skewed load.

Workload *shape* — counts, timing, read/write mix, tenancy — is public
input in the paper's model (§2.1); the *keys* a workload touches are
the secret.  Everything this package feeds into tests and benches
preserves that line (SECURITY.md, "Workload shape is public input").
"""

from repro.workloads.arrivals import (
    ARRIVAL_PROCESSES,
    arrival_times,
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)
from repro.workloads.generators import (
    DISTRIBUTIONS,
    TenantSpec,
    UniformSampler,
    WorkloadSpec,
    ZipfSampler,
    generate_requests,
    generate_schedule,
    make_sampler,
    parse_workload_spec,
    uniform_requests,
    write_ratio_sweep,
    zipf_requests,
)
from repro.workloads.trace import (
    TRACE_VERSION,
    Trace,
    TraceFormatError,
    TraceRecord,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    record_trace,
)
from repro.workloads.tuner import (
    DEFAULT_CANDIDATE,
    CandidateConfig,
    TunerResult,
    TunerSweep,
    replay_trace,
    tune,
    verify_reproduction,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "CandidateConfig",
    "DEFAULT_CANDIDATE",
    "DISTRIBUTIONS",
    "TenantSpec",
    "Trace",
    "TraceFormatError",
    "TraceRecord",
    "TunerResult",
    "TunerSweep",
    "TRACE_VERSION",
    "UniformSampler",
    "WorkloadSpec",
    "ZipfSampler",
    "arrival_times",
    "bursty_arrivals",
    "diurnal_arrivals",
    "dump_trace",
    "dumps_trace",
    "flash_crowd_arrivals",
    "generate_requests",
    "generate_schedule",
    "load_trace",
    "loads_trace",
    "make_sampler",
    "parse_workload_spec",
    "poisson_arrivals",
    "record_trace",
    "replay_trace",
    "tune",
    "uniform_requests",
    "verify_reproduction",
    "write_ratio_sweep",
    "zipf_requests",
]
