"""Replayable workload traces: a versioned JSONL record format.

A trace is one header line followed by one line per request, each a
canonical JSON object (sorted keys, no whitespace) — so a trace file is
a deterministic function of its contents and ``loads(dumps(t))`` is
byte-identical, the property the record→replay tests pin down.

Header line::

    {"checksum": "<sha256 of the record lines>", "format": "snoopy-trace",
     "meta": {...}, "records": N, "seed": S, "spec": {...}, "version": 1}

Record line::

    {"client_id": 0, "key": 17, "op": "write", "seq": 3,
     "t": 0.0123, "value": "a1b2..."}   # value hex; absent for reads

The checksum makes a trace self-identifying: the tuner stamps it into
its emitted config so a "best config" is verifiably tied to the trace
it was tuned against.  Workload *shape and timing* are public inputs
(SECURITY.md); values are payload bytes a real deployment would seal —
treat recorded trace files accordingly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.types import OpType, Request
from repro.workloads.arrivals import arrival_times
from repro.workloads.generators import WorkloadSpec, generate_requests

TRACE_FORMAT = "snoopy-trace"
TRACE_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file violates the format (version, checksum, fields)."""


def _canonical(obj: Dict[str, object]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TraceRecord:
    """One request at one arrival time."""

    t: float
    op: str  # "read" | "write"
    key: int
    value: Optional[bytes] = None
    client_id: int = 0
    seq: int = 0

    def to_request(self) -> Request:
        """The wire-level request this record replays as."""
        return Request(
            op=OpType.WRITE if self.op == "write" else OpType.READ,
            key=self.key,
            value=self.value,
            client_id=self.client_id,
            seq=self.seq,
        )

    @classmethod
    def from_request(cls, request: Request, t: float) -> "TraceRecord":
        """Record a request observed at time ``t``."""
        return cls(
            t=t,
            op="write" if request.is_write() else "read",
            key=request.key,
            value=request.value,
            client_id=request.client_id,
            seq=request.seq,
        )

    def to_json_obj(self) -> Dict[str, object]:
        """JSON-ready dict with sorted keys and hex-encoded value."""
        obj: Dict[str, object] = {
            "client_id": self.client_id,
            "key": self.key,
            "op": self.op,
            "seq": self.seq,
            "t": self.t,
        }
        if self.value is not None:
            obj["value"] = self.value.hex()
        return obj

    @classmethod
    def from_json_obj(cls, obj: Dict[str, object]) -> "TraceRecord":
        op = obj.get("op")
        if op not in ("read", "write"):
            raise TraceFormatError(f"record has invalid op {op!r}")
        value = obj.get("value")
        return cls(
            t=float(obj["t"]),
            op=str(op),
            key=int(obj["key"]),
            value=bytes.fromhex(value) if value is not None else None,
            client_id=int(obj.get("client_id", 0)),
            seq=int(obj.get("seq", 0)),
        )


@dataclass
class Trace:
    """A replayable workload: spec provenance plus timed records."""

    records: List[TraceRecord]
    spec: Optional[WorkloadSpec] = None
    seed: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        """Time of the last arrival (0.0 for an empty trace)."""
        return self.records[-1].t if self.records else 0.0

    @property
    def mean_rate(self) -> float:
        """Requests per second over the trace's makespan."""
        if not self.records or self.duration <= 0:
            return 0.0
        return len(self.records) / self.duration

    def checksum(self) -> str:
        """SHA-256 over the canonical record lines (trace identity)."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(_canonical(record.to_json_obj()).encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def requests(self) -> List[Request]:
        """Every record as a :class:`~repro.types.Request`, in order."""
        return [record.to_request() for record in self.records]

    def epoch_groups(self, epoch_duration: float) -> List[List[TraceRecord]]:
        """Records grouped into epochs of ``epoch_duration`` seconds.

        Open-loop semantics: record ``r`` lands in epoch
        ``floor(r.t / T)``; empty leading/interior epochs are kept (an
        epoch with no arrivals still closes), trailing emptiness is not.
        """
        if epoch_duration <= 0:
            raise ValueError("epoch_duration must be positive")
        if not self.records:
            return []
        last = int(self.records[-1].t / epoch_duration)
        groups: List[List[TraceRecord]] = [[] for _ in range(last + 1)]
        for record in self.records:
            groups[int(record.t / epoch_duration)].append(record)
        return groups


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def dumps_trace(trace: Trace) -> str:
    """Render a trace as canonical JSONL (header + one line per record)."""
    lines = [_canonical(r.to_json_obj()) for r in trace.records]
    header: Dict[str, object] = {
        "checksum": trace.checksum(),
        "format": TRACE_FORMAT,
        "meta": trace.meta,
        "records": len(trace.records),
        "seed": trace.seed,
        "spec": trace.spec.to_dict() if trace.spec is not None else None,
        "version": TRACE_VERSION,
    }
    return "\n".join([_canonical(header)] + lines) + "\n"


def loads_trace(text: str) -> Trace:
    """Parse :func:`dumps_trace` output; verifies version and checksum."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError("empty trace")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"unparseable trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"not a {TRACE_FORMAT} file (format="
            f"{header.get('format') if isinstance(header, dict) else None!r})"
        )
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {version!r} "
            f"(this library reads version {TRACE_VERSION})"
        )
    declared = header.get("records")
    records = [
        TraceRecord.from_json_obj(json.loads(line)) for line in lines[1:]
    ]
    if declared is not None and declared != len(records):
        raise TraceFormatError(
            f"header declares {declared} records, file has {len(records)}"
        )
    spec_obj = header.get("spec")
    trace = Trace(
        records=records,
        spec=WorkloadSpec.from_dict(spec_obj) if spec_obj else None,
        seed=header.get("seed"),
        meta=dict(header.get("meta", {})),
    )
    expected = header.get("checksum")
    if expected is not None and expected != trace.checksum():
        raise TraceFormatError(
            "trace checksum mismatch: file edited or truncated "
            f"(header {expected[:12]}..., computed "
            f"{trace.checksum()[:12]}...)"
        )
    return trace


def dump_trace(trace: Trace, path: str) -> str:
    """Write a trace file; returns its checksum."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(dumps_trace(trace))
    return trace.checksum()


def load_trace(path: str) -> Trace:
    """Read a trace file written by :func:`dump_trace`."""
    with open(path, "r", encoding="ascii") as handle:
        return loads_trace(handle.read())


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------
def record_trace(
    spec: WorkloadSpec,
    count: int,
    seed: int,
    *,
    arrival: str = "poisson",
    rate: float = 1000.0,
    arrival_params: Optional[Dict[str, object]] = None,
) -> Trace:
    """Record a synthetic trace: ``spec``-drawn requests on an arrival clock.

    The request stream (shape + keys) and the arrival stream are seeded
    independently off ``seed``, so the same spec re-recorded with the
    same seed is identical — and two specs differing only in key
    distribution produce traces with **identical timestamps and shape**.
    """
    times = arrival_times(
        arrival, rate, seed=seed ^ 0xA221_7A1, count=count,
        **(arrival_params or {}),
    )
    requests = generate_requests(spec, count, seed)
    records = [
        TraceRecord.from_request(request, t)
        for request, t in zip(requests, times)
    ]
    return Trace(
        records=records,
        spec=spec,
        seed=seed,
        meta={"arrival": arrival, "rate": rate,
              **({"arrival_params": arrival_params} if arrival_params else {})},
    )
